#include "common/trace.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/metrics.h"
#include "common/parallel.h"

namespace fairgen::trace {
namespace {

// The tracer is process-wide; every test clears it and restores the
// disabled default on the way out.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().SetEnabled(false);
    Tracer::Global().Clear();
  }
  void TearDown() override {
    Tracer::Global().SetEnabled(false);
    Tracer::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  { ScopedSpan span("test.disabled"); }
  EXPECT_EQ(Tracer::Global().size(), 0u);
}

TEST_F(TraceTest, RecordsWallAndCpuTime) {
  Tracer::Global().SetEnabled(true);
  {
    ScopedSpan span("test.busy");
    // Burn a little CPU so cpu_ns has a chance to be non-zero; correctness
    // here only requires wall >= 0 and the span to appear.
    volatile double x = 0.0;
    for (int i = 0; i < 100000; ++i) x += static_cast<double>(i) * 1e-9;
  }
  std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "test.busy");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_GT(spans[0].wall_ns, 0u);
}

TEST_F(TraceTest, NestedSpansTrackDepthAndFinishInnerFirst) {
  Tracer::Global().SetEnabled(true);
  {
    ScopedSpan outer("test.outer");
    {
      ScopedSpan inner("test.inner");
    }
  }
  std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Completion order: inner closes before outer.
  EXPECT_EQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].name, "test.outer");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_GE(spans[1].wall_ns, spans[0].wall_ns);
}

TEST_F(TraceTest, ConcurrentSpansAllRecorded) {
  Tracer::Global().SetEnabled(true);
  constexpr size_t kSpans = 256;
  ParallelFor(
      size_t{0}, kSpans, size_t{8},
      [&](size_t) { ScopedSpan span("test.parallel"); }, 4);
  EXPECT_EQ(Tracer::Global().size(), kSpans);
}

TEST_F(TraceTest, JsonAndCsvExports) {
  Tracer::Global().SetEnabled(true);
  { ScopedSpan span("test.export"); }
  std::string json = Tracer::Global().ToJson();
  EXPECT_NE(json.find("\"name\": \"test.export\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"wall_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"cpu_ns\""), std::string::npos);

  auto csv = ParseCsv(Tracer::Global().ToCsv());
  ASSERT_TRUE(csv.ok()) << csv.status().ToString();
  ASSERT_EQ(csv->header(),
            (std::vector<std::string>{"name", "cat", "start_ns", "wall_ns",
                                      "cpu_ns", "depth", "thread"}));
  ASSERT_EQ(csv->num_rows(), 1u);
  EXPECT_EQ(csv->rows()[0][0], "test.export");
  EXPECT_EQ(csv->rows()[0][1], "general");
}

TEST_F(TraceTest, CategoryNamesAreStable) {
  EXPECT_EQ(CategoryName(Category::kGeneral), "general");
  EXPECT_EQ(CategoryName(Category::kWalk), "walk");
  EXPECT_EQ(CategoryName(Category::kTrain), "train");
  EXPECT_EQ(CategoryName(Category::kEmbed), "embed");
  EXPECT_EQ(CategoryName(Category::kGenerate), "generate");
  EXPECT_EQ(CategoryName(Category::kAssemble), "assemble");
  EXPECT_EQ(CategoryName(Category::kEval), "eval");
}

TEST_F(TraceTest, SpansCarryTheirCategoryIntoExports) {
  Tracer::Global().SetEnabled(true);
  { ScopedSpan span("test.walk_span", Category::kWalk); }
  { ScopedSpan span("test.eval_span", Category::kEval); }
  std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].category, Category::kWalk);
  EXPECT_EQ(spans[1].category, Category::kEval);

  std::string json = Tracer::Global().ToJson();
  EXPECT_NE(json.find("\"cat\": \"walk\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cat\": \"eval\""), std::string::npos) << json;
}

// ScopedSpan must outlive a temporary name: the name is interned into the
// tracer's arena at construction, so dynamically built strings (the
// "bench.<scenario>" pattern) are safe to pass and identical names share
// one arena entry.
TEST_F(TraceTest, TemporaryNamesAreInternedSafely) {
  Tracer::Global().SetEnabled(true);
  for (int i = 0; i < 3; ++i) {
    std::string dynamic = std::string("test.") + "dynamic";
    ScopedSpan span(dynamic);
    dynamic.assign(64, 'x');  // clobber the source before the span closes
  }
  std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  for (const SpanRecord& s : spans) EXPECT_EQ(s.name, "test.dynamic");

  std::string_view a = Tracer::Global().InternName("test.interned");
  std::string_view b =
      Tracer::Global().InternName(std::string("test.") + "interned");
  EXPECT_EQ(a.data(), b.data()) << "identical names must share arena storage";
}

TEST_F(TraceTest, ClearDropsSpans) {
  Tracer::Global().SetEnabled(true);
  { ScopedSpan span("test.clear"); }
  ASSERT_EQ(Tracer::Global().size(), 1u);
  Tracer::Global().Clear();
  EXPECT_EQ(Tracer::Global().size(), 0u);
  EXPECT_EQ(Tracer::Global().ToJson(), "[]\n");
}

// The ring-buffer cap: below capacity the tracer is a plain append log;
// at capacity the oldest spans are overwritten, a drop counter advances,
// and every export sees only the retained suffix in completion order.
class TraceRingTest : public TraceTest {
 protected:
  void TearDown() override {
    Tracer::Global().SetCapacity(Tracer::kDefaultCapacity);
    metrics::MetricsRegistry::Global()
        .GetCounter("trace.spans_dropped")
        .Reset();
    TraceTest::TearDown();
  }
};

TEST_F(TraceRingTest, CapRetainsNewestSpansInOrder) {
  Tracer::Global().SetCapacity(4);
  EXPECT_EQ(Tracer::Global().capacity(), 4u);
  Tracer::Global().SetEnabled(true);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("test.ring." + std::to_string(i));
  }
  EXPECT_EQ(Tracer::Global().size(), 4u);
  EXPECT_EQ(Tracer::Global().dropped(), 6u);

  std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[i].name, "test.ring." + std::to_string(6 + i));
  }
}

TEST_F(TraceRingTest, DropCounterFeedsMetricsRegistry) {
  metrics::Counter& counter =
      metrics::MetricsRegistry::Global().GetCounter("trace.spans_dropped");
  counter.Reset();
  Tracer::Global().SetCapacity(2);
  Tracer::Global().SetEnabled(true);
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span("test.ringdrop");
  }
  EXPECT_EQ(Tracer::Global().dropped(), 3u);
  EXPECT_EQ(counter.value(), 3u);
}

TEST_F(TraceRingTest, ChromeTraceExportsOnlyRetainedSpans) {
  Tracer::Global().SetCapacity(3);
  Tracer::Global().SetEnabled(true);
  for (int i = 0; i < 6; ++i) {
    ScopedSpan span("test.chrome." + std::to_string(i));
  }
  std::string chrome = Tracer::Global().ToChromeTrace();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(chrome.find("test.chrome." + std::to_string(i)),
              std::string::npos)
        << "evicted span leaked into the export";
  }
  for (int i = 3; i < 6; ++i) {
    EXPECT_NE(chrome.find("test.chrome." + std::to_string(i)),
              std::string::npos);
  }
}

TEST_F(TraceRingTest, ClearResetsRingState) {
  Tracer::Global().SetCapacity(2);
  Tracer::Global().SetEnabled(true);
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span("test.ringclear");
  }
  Tracer::Global().Clear();
  EXPECT_EQ(Tracer::Global().size(), 0u);
  EXPECT_EQ(Tracer::Global().dropped(), 0u);
  { ScopedSpan span("test.ringclear.after"); }
  std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "test.ringclear.after");
}

TEST_F(TraceRingTest, ShrinkingCapacityEvictsOldest) {
  Tracer::Global().SetEnabled(true);
  for (int i = 0; i < 6; ++i) {
    ScopedSpan span("test.shrink." + std::to_string(i));
  }
  Tracer::Global().SetCapacity(2);
  std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "test.shrink.4");
  EXPECT_EQ(spans[1].name, "test.shrink.5");
  EXPECT_EQ(Tracer::Global().dropped(), 4u);
}

TEST_F(TraceRingTest, SummarizeByCategoryAggregates) {
  Tracer::Global().SetEnabled(true);
  { ScopedSpan span("test.sum.w1", Category::kWalk); }
  { ScopedSpan span("test.sum.w2", Category::kWalk); }
  { ScopedSpan span("test.sum.t1", Category::kTrain); }
  auto summary = Tracer::Global().SummarizeByCategory();
  ASSERT_EQ(summary.size(), 2u);
  // Sorted by category name: "train" < "walk".
  EXPECT_EQ(summary[0].first, "train");
  EXPECT_EQ(summary[0].second.count, 1u);
  EXPECT_EQ(summary[1].first, "walk");
  EXPECT_EQ(summary[1].second.count, 2u);
  EXPECT_GE(summary[1].second.wall_ns, 0u);
}

}  // namespace
}  // namespace fairgen::trace
