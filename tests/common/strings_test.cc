#include "common/strings.h"

#include <gtest/gtest.h>

namespace fairgen {
namespace {

TEST(StrSplitTest, BasicSplit) {
  auto parts = StrSplit("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrSplitTest, KeepsEmptyFields) {
  auto parts = StrSplit("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StrSplitTest, NoSeparator) {
  auto parts = StrSplit("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StrSplitTest, EmptyInput) {
  auto parts = StrSplit("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StrSplitWhitespaceTest, DropsEmptyRuns) {
  auto parts = StrSplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(StrSplitWhitespaceTest, AllWhitespace) {
  EXPECT_TRUE(StrSplitWhitespace(" \t\n ").empty());
}

TEST(StrTrimTest, TrimsBothEnds) {
  EXPECT_EQ(StrTrim("  x y  "), "x y");
  EXPECT_EQ(StrTrim("xy"), "xy");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim(""), "");
}

TEST(StrStartsWithTest, Basics) {
  EXPECT_TRUE(StrStartsWith("foobar", "foo"));
  EXPECT_TRUE(StrStartsWith("foo", ""));
  EXPECT_FALSE(StrStartsWith("fo", "foo"));
  EXPECT_FALSE(StrStartsWith("barfoo", "foo"));
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 4), "1.0000");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(0.0, 0), "0");
}

}  // namespace
}  // namespace fairgen
