#include "common/strings.h"

#include <gtest/gtest.h>

namespace fairgen {
namespace {

TEST(StrSplitTest, BasicSplit) {
  auto parts = StrSplit("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrSplitTest, KeepsEmptyFields) {
  auto parts = StrSplit("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StrSplitTest, NoSeparator) {
  auto parts = StrSplit("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StrSplitTest, EmptyInput) {
  auto parts = StrSplit("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StrSplitWhitespaceTest, DropsEmptyRuns) {
  auto parts = StrSplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(StrSplitWhitespaceTest, AllWhitespace) {
  EXPECT_TRUE(StrSplitWhitespace(" \t\n ").empty());
}

TEST(StrTrimTest, TrimsBothEnds) {
  EXPECT_EQ(StrTrim("  x y  "), "x y");
  EXPECT_EQ(StrTrim("xy"), "xy");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim(""), "");
}

TEST(StrStartsWithTest, Basics) {
  EXPECT_TRUE(StrStartsWith("foobar", "foo"));
  EXPECT_TRUE(StrStartsWith("foo", ""));
  EXPECT_FALSE(StrStartsWith("fo", "foo"));
  EXPECT_FALSE(StrStartsWith("barfoo", "foo"));
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 4), "1.0000");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(0.0, 0), "0");
}

TEST(StrEndsWithTest, Basics) {
  EXPECT_TRUE(StrEndsWith("trace.perfetto.json", ".perfetto.json"));
  EXPECT_TRUE(StrEndsWith("foo", ""));
  EXPECT_TRUE(StrEndsWith("", ""));
  EXPECT_FALSE(StrEndsWith("json", ".perfetto.json"));
  EXPECT_FALSE(StrEndsWith("foo.jsonx", ".json"));
}

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("trainer.nll"), "trainer.nll");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(JsonEscapeTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
}

TEST(JsonEscapeTest, EscapesNamedControlCharacters) {
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonEscape("a\rb"), "a\\rb");
  EXPECT_EQ(JsonEscape("a\bb"), "a\\bb");
  EXPECT_EQ(JsonEscape("a\fb"), "a\\fb");
}

TEST(JsonEscapeTest, EscapesRemainingControlsAsUnicode) {
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string_view("\x00", 1)), "\\u0000");
  EXPECT_EQ(JsonEscape("a\x1f"
                       "z"),
            "a\\u001fz");
}

TEST(ParseIntTest, ParsesPlainIntegers) {
  EXPECT_EQ(ParseInt("0").ValueOrDie(), 0);
  EXPECT_EQ(ParseInt("42").ValueOrDie(), 42);
  EXPECT_EQ(ParseInt("-17").ValueOrDie(), -17);
  EXPECT_EQ(ParseInt("9223372036854775807").ValueOrDie(), INT64_MAX);
  EXPECT_EQ(ParseInt("-9223372036854775808").ValueOrDie(), INT64_MIN);
}

TEST(ParseIntTest, RejectsGarbageAndPartialParses) {
  // Null-endptr strtol would have returned 0 / 12 here.
  EXPECT_FALSE(ParseInt("abc").ok());
  EXPECT_FALSE(ParseInt("12x").ok());
  EXPECT_FALSE(ParseInt("12 ").ok());
  EXPECT_FALSE(ParseInt(" 12").ok());
  EXPECT_FALSE(ParseInt("1.5").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("-").ok());
  EXPECT_FALSE(ParseInt("0x10").ok());
  EXPECT_TRUE(ParseInt("abc").status().IsInvalidArgument());
}

TEST(ParseIntTest, RejectsOverflowAndOutOfRange) {
  EXPECT_FALSE(ParseInt("9223372036854775808").ok());
  EXPECT_FALSE(ParseInt("-9223372036854775809").ok());
  EXPECT_FALSE(ParseInt("99999999999999999999999").ok());
  // Caller-supplied bounds (the CLI's 0..65535 port range).
  EXPECT_EQ(ParseInt("65535", 0, 65535).ValueOrDie(), 65535);
  EXPECT_FALSE(ParseInt("65536", 0, 65535).ok());
  EXPECT_FALSE(ParseInt("-1", 0, 65535).ok());
}

TEST(ParseUintTest, ParsesPlainIntegers) {
  EXPECT_EQ(ParseUint("0").ValueOrDie(), 0u);
  EXPECT_EQ(ParseUint("42").ValueOrDie(), 42u);
  EXPECT_EQ(ParseUint("18446744073709551615").ValueOrDie(), UINT64_MAX);
}

TEST(ParseUintTest, RejectsNegativeInsteadOfWrapping) {
  // strtoul silently wraps "-3" to 18446744073709551613.
  auto parsed = ParseUint("-3");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("negative"), std::string::npos);
}

TEST(ParseUintTest, RejectsGarbageOverflowAndRange) {
  EXPECT_FALSE(ParseUint("abc").ok());
  EXPECT_FALSE(ParseUint("12x").ok());
  EXPECT_FALSE(ParseUint("").ok());
  EXPECT_FALSE(ParseUint("18446744073709551616").ok());
  EXPECT_EQ(ParseUint("255", 255).ValueOrDie(), 255u);
  EXPECT_FALSE(ParseUint("256", 255).ok());
}

}  // namespace
}  // namespace fairgen
