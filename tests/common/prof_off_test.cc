// Off-by-default invariants of the sampling profiler, in a binary that
// NEVER calls Profiler::Start: linking the profiler must be bitwise free.
// These assertions live in their own test executable because a single
// Start anywhere in the process installs the (gated) SIGPROF handler for
// good — sharing a binary with the active-profiler suite would make the
// invariants depend on test ordering.

#include "common/prof.h"

#include <dirent.h>
#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fairgen::prof {
namespace {

// Targets of every open fd's /proc/self/fd symlink. perf_event fds read
// back as "anon_inode:[perf_event]".
std::vector<std::string> OpenFdTargets() {
  std::vector<std::string> out;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return out;  // non-procfs platform: nothing to check
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    char buf[256];
    std::string path = std::string("/proc/self/fd/") + name;
    ssize_t len = ::readlink(path.c_str(), buf, sizeof(buf) - 1);
    if (len > 0) {
      buf[len] = '\0';
      out.emplace_back(buf);
    }
  }
  ::closedir(dir);
  return out;
}

TEST(ProfOffByDefaultTest, NoSigprofHandlerInstalled) {
  struct sigaction current;
  ASSERT_EQ(sigaction(SIGPROF, nullptr, &current), 0);
  EXPECT_EQ(current.sa_handler, SIG_DFL)
      << "a SIGPROF handler is installed without Profiler::Start";
}

TEST(ProfOffByDefaultTest, NoPerfEventFdsOpen) {
  for (const std::string& target : OpenFdTargets()) {
    EXPECT_EQ(target.find("perf_event"), std::string::npos)
        << "open perf_event fd without Profiler::Start: " << target;
  }
}

TEST(ProfOffByDefaultTest, ProfilerReportsStopped) {
  Profiler& profiler = Profiler::Global();
  EXPECT_FALSE(profiler.running());
  EXPECT_EQ(profiler.samples(), 0u);
  EXPECT_EQ(profiler.dropped(), 0u);
  EXPECT_EQ(profiler.hz(), 0u);
  EXPECT_TRUE(profiler.ToFolded().empty());
  EXPECT_TRUE(profiler.ToFoldedText().empty());
  EXPECT_TRUE(profiler.TopSymbols(10).empty());
}

TEST(ProfOffByDefaultTest, ThreadCountersInvalidWhenStopped) {
  HwCounters hw = ReadThreadCounters();
  EXPECT_FALSE(hw.valid);
}

TEST(ProfOffByDefaultTest, HzFromEnvParsesAndRejects) {
  ASSERT_EQ(::unsetenv("FAIRGEN_PROF_HZ"), 0);
  EXPECT_EQ(HzFromEnv(), 0u);
  ASSERT_EQ(::setenv("FAIRGEN_PROF_HZ", "97", 1), 0);
  EXPECT_EQ(HzFromEnv(), 97u);
  ASSERT_EQ(::setenv("FAIRGEN_PROF_HZ", "0", 1), 0);
  EXPECT_EQ(HzFromEnv(), 0u);
  ASSERT_EQ(::setenv("FAIRGEN_PROF_HZ", "100000", 1), 0);
  EXPECT_EQ(HzFromEnv(), 0u);
  ASSERT_EQ(::setenv("FAIRGEN_PROF_HZ", "notanumber", 1), 0);
  EXPECT_EQ(HzFromEnv(), 0u);
  ASSERT_EQ(::unsetenv("FAIRGEN_PROF_HZ"), 0);
}

}  // namespace
}  // namespace fairgen::prof
