#include "common/watchdog.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/events.h"
#include "common/metrics.h"
#include "common/telemetry.h"

namespace fairgen::watchdog {
namespace {

// Set by the injected fatal handler; the real default raises SIGTERM.
int g_fatal_calls = 0;
void CountingFatalHandler() { ++g_fatal_calls; }

class WatchdogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::MetricsRegistry::Global().ResetValues();
    events::Journal::Global().ResetForTest();
    Watchdog::Global().ResetForTest();
    Watchdog::Global().SetFatalHandler(&CountingFatalHandler);
    g_fatal_calls = 0;
    Options options;
    options.enabled = true;
    Configure(options);
  }

  void TearDown() override {
    Watchdog::Global().SetFatalHandler(nullptr);
    Configure(Options{});  // disabled
    metrics::MetricsRegistry::Global().ResetValues();
    events::Journal::Global().ResetForTest();
  }

  void Configure(const Options& options) {
    Watchdog::Global().Configure(options);
  }

  std::vector<Alert> Tick() { return Watchdog::Global().EvaluateTick(); }

  metrics::MetricsRegistry& registry() {
    return metrics::MetricsRegistry::Global();
  }
};

TEST_F(WatchdogTest, DisabledEngineNeverFires) {
  Configure(Options{});  // enabled = false
  registry().GetCounter("trainer.nonfinite_batches").Increment();
  EXPECT_TRUE(Tick().empty());
  EXPECT_EQ(Watchdog::Global().alerts_fired(), 0u);
  // No alert counters materialize from a disabled engine.
  EXPECT_EQ(registry().GetCounter("alerts.total").value(), 0u);
}

TEST_F(WatchdogTest, NonFiniteLossFiresPerIncrease) {
  registry().GetCounter("trainer.nonfinite_batches").Increment();
  std::vector<Alert> fired = Tick();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, "loss_non_finite");
  EXPECT_EQ(fired[0].severity, Severity::kWarn);

  // Same count -> quiet; another increase -> fires again.
  EXPECT_TRUE(Tick().empty());
  registry().GetCounter("trainer.nonfinite_batches").Increment(2);
  fired = Tick();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].value, 3.0);
}

TEST_F(WatchdogTest, AlertsFeedCountersAndJournal) {
  registry().GetCounter("trainer.nonfinite_batches").Increment();
  ASSERT_EQ(Tick().size(), 1u);
  EXPECT_EQ(registry().GetCounter("alerts.total").value(), 1u);
  EXPECT_EQ(
      registry().GetCounter("alerts.rule.loss_non_finite").value(), 1u);
  EXPECT_EQ(events::Journal::Global().TypeCount(events::Type::kAlert), 1u);
  EXPECT_EQ(Watchdog::Global().alerts_fired(), 1u);
}

TEST_F(WatchdogTest, AlertCountersExposeAsLabeledPrometheusFamily) {
  // Absent before any alert — alert-free runs keep a label-free exposition.
  EXPECT_EQ(telemetry::PrometheusText().find("fairgen_alerts_total"),
            std::string::npos);
  registry().GetCounter("trainer.nonfinite_batches").Increment();
  ASSERT_EQ(Tick().size(), 1u);
  const std::string text = telemetry::PrometheusText();
  EXPECT_NE(text.find("# TYPE fairgen_alerts_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("fairgen_alerts_total{rule=\"loss_non_finite\"} 1"),
            std::string::npos);
  // The dotted backing counters must not leak as separate families.
  EXPECT_EQ(text.find("fairgen_alerts_rule_"), std::string::npos);
}

TEST_F(WatchdogTest, ExplodingLossLatchesPerEpisodeAndRearms) {
  Options options;
  options.enabled = true;
  options.explode_factor = 100.0;
  Configure(options);
  auto& series = registry().GetSeries("trainer.total_loss");
  series.Append(0, 2.0);
  series.Append(1, 500.0);  // > 100 x max(|2.0|, 1)
  std::vector<Alert> fired = Tick();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, "loss_exploding");
  EXPECT_TRUE(Tick().empty());  // latched within the episode

  series.Append(2, 2.5);  // recovery re-arms
  EXPECT_TRUE(Tick().empty());
  series.Append(3, 900.0);  // second episode
  fired = Tick();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, "loss_exploding");
}

TEST_F(WatchdogTest, PlateauFiresWhenWindowHasNoNewMinimum) {
  Options options;
  options.enabled = true;
  options.plateau_cycles = 3;
  Configure(options);
  auto& series = registry().GetSeries("trainer.total_loss");
  series.Append(0, 5.0);
  series.Append(1, 3.0);  // minimum, before the trailing window
  series.Append(2, 4.0);
  series.Append(3, 4.0);
  EXPECT_TRUE(Tick().empty());  // window [1..3] still contains the min
  series.Append(4, 4.0);        // window [2..4]: no improvement on 3.0
  std::vector<Alert> fired = Tick();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, "loss_plateau");
  EXPECT_TRUE(Tick().empty());  // latched

  series.Append(5, 1.0);  // new minimum re-arms
  EXPECT_TRUE(Tick().empty());
}

TEST_F(WatchdogTest, StallFiresAfterQuietTicksAndResetsOnProgress) {
  Options options;
  options.enabled = true;
  options.stall_ticks = 3;
  Configure(options);
  // No progress at all: never armed, never fires.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(Tick().empty());

  events::Event stage;
  stage.type = events::Type::kStage;
  stage.name = "fit";
  events::Journal::Global().Emit(stage);
  EXPECT_TRUE(Tick().empty());  // progress observed, streak resets
  EXPECT_TRUE(Tick().empty());  // streak 1
  EXPECT_TRUE(Tick().empty());  // streak 2
  std::vector<Alert> fired = Tick();  // streak 3 -> fire
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, "stage_stall");
  EXPECT_TRUE(Tick().empty());  // latched

  // New progress clears the latch; the next quiet stretch fires again.
  stage.name = "generate";
  events::Journal::Global().Emit(stage);
  EXPECT_TRUE(Tick().empty());
  EXPECT_TRUE(Tick().empty());
  EXPECT_TRUE(Tick().empty());
  EXPECT_EQ(Tick().size(), 1u);
}

TEST_F(WatchdogTest, RssBudgetIsFatalDebouncedAndArmGated) {
  Options options;
  options.enabled = true;
  options.rss_budget_mb = 1;  // any real process exceeds 1 MiB
  options.rss_debounce_ticks = 2;
  options.fatal_arm_cycles = 1;
  Configure(options);

  // trainer.cycles == 0 < fatal_arm_cycles: breaches don't arm the rule.
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(Tick().empty());
  EXPECT_EQ(g_fatal_calls, 0);

  registry().GetCounter("trainer.cycles").Increment();
  EXPECT_TRUE(Tick().empty());  // armed, streak 1 of 2
  std::vector<Alert> fired = Tick();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, "rss_budget");
  EXPECT_EQ(fired[0].severity, Severity::kFatal);
  EXPECT_EQ(g_fatal_calls, 1);

  // The fatal action runs at most once per process even if the rule set
  // keeps breaching.
  EXPECT_TRUE(Tick().empty());
  EXPECT_EQ(g_fatal_calls, 1);
}

TEST_F(WatchdogTest, DroppedRecordsFirePerIncrease) {
  registry().GetCounter("prof.samples_dropped").Increment(4);
  std::vector<Alert> fired = Tick();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, "spans_dropped");
  EXPECT_TRUE(Tick().empty());
  registry().GetCounter("prof.samples_dropped").Increment();
  EXPECT_EQ(Tick().size(), 1u);
}

TEST_F(WatchdogTest, FairnessDriftComparesLastGapToFirst) {
  auto& series = registry().GetSeries("probe.disparity_gap");
  series.Append(0, 0.01);
  EXPECT_TRUE(Tick().empty());  // one point: no trend yet
  series.Append(1, 0.04);
  EXPECT_TRUE(Tick().empty());  // growth 0.03 below the 0.05 floor
  series.Append(2, 0.2);
  std::vector<Alert> fired = Tick();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, "fairness_drift");
  EXPECT_TRUE(Tick().empty());  // latched while drifted

  series.Append(3, 0.02);  // back near the first gap: re-arms
  EXPECT_TRUE(Tick().empty());
  series.Append(4, 0.3);
  EXPECT_EQ(Tick().size(), 1u);
}

TEST_F(WatchdogTest, ConfigureResetsRuleState) {
  registry().GetCounter("trainer.nonfinite_batches").Increment();
  ASSERT_EQ(Tick().size(), 1u);
  // Reconfiguring drops the marker, so the same counter value fires anew.
  Options options;
  options.enabled = true;
  Configure(options);
  EXPECT_EQ(Tick().size(), 1u);
}

}  // namespace
}  // namespace fairgen::watchdog
