#include "common/events.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"

namespace fairgen::events {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override { Journal::Global().ResetForTest(); }
  void TearDown() override { Journal::Global().ResetForTest(); }

  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/fairgen_events_" + name + "_" +
           std::to_string(::getpid()) + ".jsonl";
  }
};

TEST(EventTypeTest, WireNamesAreStable) {
  EXPECT_STREQ(TypeName(Type::kStage), "stage");
  EXPECT_STREQ(TypeName(Type::kCheckpoint), "checkpoint");
  EXPECT_STREQ(TypeName(Type::kAlert), "alert");
  EXPECT_STREQ(TypeName(Type::kProbe), "probe");
  EXPECT_STREQ(TypeName(Type::kConfig), "config");
  EXPECT_STREQ(TypeName(Type::kCrash), "crash");
}

TEST(EventJsonTest, MinimalRecordHasRequiredKeysOnly) {
  Event event;
  event.type = Type::kStage;
  event.name = "fit";
  event.seq = 3;
  event.unix_ms = 1234;
  const std::string line = ToJsonLine(event);
  auto doc = json::Parse(line);
  ASSERT_TRUE(doc.ok()) << line;
  EXPECT_EQ(doc->GetDouble("seq", 0), 3.0);
  EXPECT_EQ(doc->GetDouble("unix_ms", 0), 1234.0);
  EXPECT_EQ(doc->GetString("type"), "stage");
  EXPECT_EQ(doc->GetString("name"), "fit");
  // Optional keys absent when empty / epoch < 0; fields always present.
  EXPECT_EQ(doc->Find("severity"), nullptr);
  EXPECT_EQ(doc->Find("message"), nullptr);
  EXPECT_EQ(doc->Find("epoch"), nullptr);
  ASSERT_NE(doc->Find("fields"), nullptr);
  EXPECT_TRUE(doc->Find("fields")->is_object());
}

TEST(EventJsonTest, FullRecordRoundTrips) {
  Event event;
  event.type = Type::kAlert;
  event.name = "rss_budget";
  event.severity = "fatal";
  event.message = "over \"budget\"";  // exercises escaping
  event.epoch = 2.0;
  event.fields = {{"value", 7.25}, {"limit", 1.0}};
  event.seq = 9;
  event.unix_ms = 42;
  auto doc = json::Parse(ToJsonLine(event));
  ASSERT_TRUE(doc.ok()) << ToJsonLine(event);
  EXPECT_EQ(doc->GetString("severity"), "fatal");
  EXPECT_EQ(doc->GetString("message"), "over \"budget\"");
  EXPECT_EQ(doc->GetDouble("epoch", -1), 2.0);
  const json::Value* fields = doc->Find("fields");
  ASSERT_NE(fields, nullptr);
  EXPECT_EQ(fields->GetDouble("value", 0), 7.25);
  EXPECT_EQ(fields->GetDouble("limit", 0), 1.0);
}

TEST_F(JournalTest, EmitAssignsIncreasingSeqAndCountsTypes) {
  Journal& journal = Journal::Global();
  Event a;
  a.type = Type::kStage;
  a.name = "load";
  Event b;
  b.type = Type::kProbe;
  b.name = "fairness";
  const uint64_t seq_a = journal.Emit(a);
  const uint64_t seq_b = journal.Emit(b);
  EXPECT_GT(seq_a, 0u);
  EXPECT_GT(seq_b, seq_a);
  EXPECT_EQ(journal.total(), 2u);
  EXPECT_EQ(journal.pending(), 2u);
  EXPECT_EQ(journal.TypeCount(Type::kStage), 1u);
  EXPECT_EQ(journal.TypeCount(Type::kProbe), 1u);
  EXPECT_EQ(journal.TypeCount(Type::kAlert), 0u);
  EXPECT_EQ(journal.dropped(), 0u);
}

TEST_F(JournalTest, FlushAppendsOnceAndClearsPending) {
  Journal& journal = Journal::Global();
  const std::string path = TempPath("flush");
  std::remove(path.c_str());

  Event event;
  event.type = Type::kConfig;
  event.name = "run_start";
  journal.Emit(event);
  ASSERT_TRUE(journal.FlushTo(path).ok());
  EXPECT_EQ(journal.pending(), 0u);
  EXPECT_EQ(ReadLines(path).size(), 1u);

  // A flush with nothing pending appends nothing.
  ASSERT_TRUE(journal.FlushTo(path).ok());
  EXPECT_EQ(ReadLines(path).size(), 1u);

  // The next record lands after the first — append, not rewrite.
  event.name = "run_end";
  journal.Emit(event);
  ASSERT_TRUE(journal.FlushTo(path).ok());
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  auto first = json::Parse(lines[0]);
  auto second = json::Parse(lines[1]);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->GetString("name"), "run_start");
  EXPECT_EQ(second->GetString("name"), "run_end");
  EXPECT_GT(second->GetDouble("seq", 0), first->GetDouble("seq", 0));
  std::remove(path.c_str());
}

TEST_F(JournalTest, FlushFailureKeepsRecordsPending) {
  Journal& journal = Journal::Global();
  Event event;
  event.type = Type::kStage;
  event.name = "fit";
  journal.Emit(event);
  EXPECT_FALSE(journal.FlushTo("/nonexistent-dir-xyz/events.jsonl").ok());
  EXPECT_EQ(journal.pending(), 1u);  // still there for the next flush
}

TEST_F(JournalTest, OverflowDropsNewRecordsAndCountsThem) {
  Journal& journal = Journal::Global();
  Event event;
  event.type = Type::kStage;
  event.name = "spin";
  for (size_t i = 0; i < Journal::kMaxPending; ++i) {
    ASSERT_GT(journal.Emit(event), 0u);
  }
  EXPECT_EQ(journal.Emit(event), 0u);  // buffer full -> dropped
  EXPECT_EQ(journal.dropped(), 1u);
  EXPECT_EQ(journal.total(), Journal::kMaxPending);
  EXPECT_EQ(journal.pending(), Journal::kMaxPending);
}

TEST_F(JournalTest, ResetClearsEverything) {
  Journal& journal = Journal::Global();
  Event event;
  event.type = Type::kCrash;
  event.name = "signal_flush";
  journal.Emit(event);
  journal.ResetForTest();
  EXPECT_EQ(journal.pending(), 0u);
  EXPECT_EQ(journal.total(), 0u);
  EXPECT_EQ(journal.dropped(), 0u);
  EXPECT_EQ(journal.TypeCount(Type::kCrash), 0u);
}

}  // namespace
}  // namespace fairgen::events
