#include "common/logging.h"

#include <gtest/gtest.h>

namespace fairgen {
namespace {

class LoggingTest : public testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, SuppressedLevelsDoNotEvaluateToAbort) {
  SetLogLevel(LogLevel::kError);
  // Streams below the threshold are skipped entirely; this must not crash
  // or print.
  FAIRGEN_LOG(INFO) << "suppressed " << 42;
  FAIRGEN_LOG(DEBUG) << "also suppressed";
  SUCCEED();
}

TEST_F(LoggingTest, EnabledLevelStreamsValues) {
  testing::internal::CaptureStderr();
  FAIRGEN_LOG(WARNING) << "value=" << 7;
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("value=7"), std::string::npos);
  EXPECT_NE(out.find("WARN"), std::string::npos);
}

TEST_F(LoggingTest, CheckPassesOnTrue) {
  FAIRGEN_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH(FAIRGEN_CHECK(false) << "doom", "Check failed");
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH(FAIRGEN_LOG(FATAL) << "fatal message", "fatal message");
}

}  // namespace
}  // namespace fairgen
