#include "common/logging.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace fairgen {
namespace {

class LoggingTest : public testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, SuppressedLevelsDoNotEvaluateToAbort) {
  SetLogLevel(LogLevel::kError);
  // Streams below the threshold are skipped entirely; this must not crash
  // or print.
  FAIRGEN_LOG(INFO) << "suppressed " << 42;
  FAIRGEN_LOG(DEBUG) << "also suppressed";
  SUCCEED();
}

TEST_F(LoggingTest, EnabledLevelStreamsValues) {
  testing::internal::CaptureStderr();
  FAIRGEN_LOG(WARNING) << "value=" << 7;
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("value=7"), std::string::npos);
  EXPECT_NE(out.find("WARN"), std::string::npos);
}

TEST_F(LoggingTest, ParseLogLevelAcceptsCanonicalAndAliasNames) {
  LogLevel level = LogLevel::kFatal;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("FATAL", &level));  // case-insensitive
  EXPECT_EQ(level, LogLevel::kFatal);
}

TEST_F(LoggingTest, ParseLogLevelRejectsUnknownNamesWithoutClobbering) {
  LogLevel level = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("debugging", &level));
  EXPECT_EQ(level, LogLevel::kError) << "failed parse must not touch *out";
}

TEST_F(LoggingTest, InitLogLevelFromEnvAppliesValidValue) {
  ASSERT_EQ(::setenv("FAIRGEN_LOG_LEVEL", "error", 1), 0);
  SetLogLevel(LogLevel::kInfo);
  EXPECT_TRUE(InitLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  ::unsetenv("FAIRGEN_LOG_LEVEL");
}

TEST_F(LoggingTest, InitLogLevelFromEnvIgnoresInvalidOrMissingValue) {
  ASSERT_EQ(::setenv("FAIRGEN_LOG_LEVEL", "loudest", 1), 0);
  SetLogLevel(LogLevel::kWarning);
  EXPECT_FALSE(InitLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  ::unsetenv("FAIRGEN_LOG_LEVEL");
  EXPECT_FALSE(InitLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST_F(LoggingTest, CheckPassesOnTrue) {
  FAIRGEN_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH(FAIRGEN_CHECK(false) << "doom", "Check failed");
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH(FAIRGEN_LOG(FATAL) << "fatal message", "fatal message");
}

}  // namespace
}  // namespace fairgen
