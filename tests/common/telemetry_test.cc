#include "common/telemetry.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/events.h"
#include "common/json.h"
#include "common/metrics.h"

namespace fairgen::telemetry {
namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// Minimal blocking HTTP GET against 127.0.0.1:<port>; returns the whole
// response (status line + headers + body), empty on connect failure.
std::string HttpGet(uint16_t port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) response.append(buf, n);
  ::close(fd);
  return response;
}

TEST(TelemetryInfoTest, GitRevisionIsNonEmpty) {
  EXPECT_FALSE(GitRevision().empty());
}

TEST(TelemetryInfoTest, HostInfoIsPopulated) {
  HostInfo info = GetHostInfo();
  EXPECT_FALSE(info.hostname.empty());
  EXPECT_FALSE(info.os.empty());
}

TEST(TelemetryInfoTest, UnixMillisAdvances) {
  const uint64_t a = UnixMillis();
  EXPECT_GT(a, 1'600'000'000'000ull);  // after Sep 2020: a real clock
}

TEST(WriteFileAtomicTest, WritesAndReplacesWithoutTmpResidue) {
  std::string path = testing::TempDir() + "/fairgen_atomic_test.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "first").ok());
  EXPECT_EQ(ReadWholeFile(path), "first");
  ASSERT_TRUE(WriteFileAtomic(path, "second").ok());
  EXPECT_EQ(ReadWholeFile(path), "second");
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(WriteFileAtomicTest, FailsOnUnwritableDirectory) {
  EXPECT_FALSE(
      WriteFileAtomic("/nonexistent-dir-xyz/file.txt", "data").ok());
}

// The exposition must sanitize metric names (dots -> underscores, a
// `fairgen_` prefix), emit cumulative histogram buckets, `_sum`/`_count`,
// and a separate `<name>_quantile` gauge family.
TEST(PrometheusTextTest, ExposesRegistryMetrics) {
  auto& registry = metrics::MetricsRegistry::Global();
  registry.GetCounter("telemetry_test.hits").Increment(3);
  registry.GetGauge("telemetry_test.level").Set(2.5);
  auto& histogram = registry.GetHistogram("telemetry_test.latency",
                                          {1.0, 10.0, 100.0});
  histogram.Observe(0.5);
  histogram.Observe(5.0);
  histogram.Observe(50.0);
  histogram.Observe(5000.0);  // overflow bucket
  registry.GetSeries("telemetry_test.curve").Append(0, 1.0);
  registry.GetSeries("telemetry_test.curve").Append(1, 4.0);

  const std::string text = PrometheusText();

  // Process gauges straight from memprobe.
  EXPECT_NE(text.find("# TYPE fairgen_process_rss_bytes gauge"),
            std::string::npos);
  EXPECT_NE(text.find("fairgen_process_rss_bytes "), std::string::npos);

  EXPECT_NE(text.find("# TYPE fairgen_telemetry_test_hits counter"),
            std::string::npos);
  EXPECT_NE(text.find("fairgen_telemetry_test_hits 3"), std::string::npos);
  EXPECT_NE(text.find("fairgen_telemetry_test_level 2.5"),
            std::string::npos);

  // Buckets are cumulative: 1, 2, 3 then +Inf = 4.
  EXPECT_NE(text.find("# TYPE fairgen_telemetry_test_latency histogram"),
            std::string::npos);
  EXPECT_NE(text.find("fairgen_telemetry_test_latency_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("fairgen_telemetry_test_latency_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(
      text.find("fairgen_telemetry_test_latency_bucket{le=\"100\"} 3"),
      std::string::npos);
  EXPECT_NE(
      text.find("fairgen_telemetry_test_latency_bucket{le=\"+Inf\"} 4"),
      std::string::npos);
  EXPECT_NE(text.find("fairgen_telemetry_test_latency_count 4"),
            std::string::npos);
  EXPECT_NE(text.find("fairgen_telemetry_test_latency_sum "),
            std::string::npos);

  // Quantiles live in their own gauge family (a family cannot mix
  // histogram and summary samples).
  EXPECT_NE(
      text.find("# TYPE fairgen_telemetry_test_latency_quantile gauge"),
      std::string::npos);
  EXPECT_NE(
      text.find("fairgen_telemetry_test_latency_quantile{quantile=\"0.5\"}"),
      std::string::npos);
  EXPECT_NE(text.find(
                "fairgen_telemetry_test_latency_quantile{quantile=\"0.99\"}"),
            std::string::npos);

  // Series expose their last value as a gauge.
  EXPECT_NE(text.find("# TYPE fairgen_telemetry_test_curve gauge"),
            std::string::npos);
  EXPECT_NE(text.find("fairgen_telemetry_test_curve 4"), std::string::npos);
}

TEST(SnapshotJsonTest, ParsesAndCarriesCoreFields) {
  auto doc = json::Parse(SnapshotJson("test-run", 7, UnixMillis() - 50));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->GetString("run_id", ""), "test-run");
  EXPECT_EQ(doc->GetDouble("sequence", -1), 7.0);
  EXPECT_GE(doc->GetDouble("uptime_ms", -1), 50.0);
  const json::Value* memory = doc->Find("memory");
  ASSERT_NE(memory, nullptr);
  EXPECT_GT(memory->GetDouble("rss_bytes", 0), 0.0);
  EXPECT_NE(doc->Find("spans"), nullptr);
  EXPECT_NE(doc->Find("metrics"), nullptr);
}

class PublisherTest : public ::testing::Test {
 protected:
  // Pid-unique parent so reruns never collide with stale run dirs in the
  // persistent temp directory (explicit run ids get `-N` suffixed on
  // collision, which would break the ExplicitRunIdIsHonored assertion).
  std::string MakeParentDir(const std::string& tag) {
    return testing::TempDir() + "/fairgen_telemetry_" + tag + "_" +
           std::to_string(::getpid());
  }
};

TEST_F(PublisherTest, LifecycleWritesManifestSnapshotAndProm) {
  PublisherOptions options;
  options.dir = MakeParentDir("lifecycle");
  options.interval_ms = 10;
  options.binary = "telemetry_test";
  options.args = {"--flag=1"};
  options.seed = 99;
  options.threads = 2;
  Publisher publisher(options);
  ASSERT_TRUE(publisher.Init().ok());
  EXPECT_TRUE(publisher.running());
  EXPECT_FALSE(publisher.run_id().empty());

  // Snapshot 0 is synchronous with Init.
  EXPECT_TRUE(FileExists(publisher.run_dir() + "/run.json"));
  EXPECT_TRUE(FileExists(publisher.run_dir() + "/snapshot.json"));
  EXPECT_TRUE(FileExists(publisher.run_dir() + "/metrics.prom"));

  // Live manifest: not finalized yet.
  {
    auto manifest = json::ParseFile(publisher.run_dir() + "/run.json");
    ASSERT_TRUE(manifest.ok());
    const json::Value* finalized = manifest->Find("finalized");
    ASSERT_NE(finalized, nullptr);
    EXPECT_FALSE(finalized->AsBool());
    EXPECT_EQ(manifest->GetDouble("seed", -1), 99.0);
    EXPECT_EQ(manifest->GetDouble("threads", -1), 2.0);
    EXPECT_EQ(manifest->GetString("binary", ""), "telemetry_test");
  }

  // The periodic thread advances the sequence.
  const uint64_t before = publisher.snapshots_written();
  for (int i = 0; i < 200 && publisher.snapshots_written() <= before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(publisher.snapshots_written(), before);

  publisher.Stop(0);
  EXPECT_FALSE(publisher.running());

  auto manifest = json::ParseFile(publisher.run_dir() + "/run.json");
  ASSERT_TRUE(manifest.ok());
  EXPECT_TRUE(manifest->Find("finalized")->AsBool());
  EXPECT_EQ(manifest->GetDouble("exit_status", -1), 0.0);
  EXPECT_GT(manifest->GetDouble("end_unix_ms", 0),
            manifest->GetDouble("start_unix_ms", 1) - 1);

  auto snapshot = json::ParseFile(publisher.run_dir() + "/snapshot.json");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->GetString("run_id", ""), publisher.run_id());
}

TEST_F(PublisherTest, StopIsIdempotent) {
  PublisherOptions options;
  options.dir = MakeParentDir("idempotent");
  options.interval_ms = 0;  // no periodic thread
  Publisher publisher(options);
  ASSERT_TRUE(publisher.Init().ok());
  publisher.Stop(3);
  publisher.Stop(0);  // must not clobber the first finalization
  auto manifest = json::ParseFile(publisher.run_dir() + "/run.json");
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->GetDouble("exit_status", -1), 3.0);
}

TEST_F(PublisherTest, SnapshotNowAdvancesSequenceWithoutThread) {
  PublisherOptions options;
  options.dir = MakeParentDir("manual");
  options.interval_ms = 0;
  Publisher publisher(options);
  ASSERT_TRUE(publisher.Init().ok());
  const uint64_t before = publisher.snapshots_written();
  ASSERT_TRUE(publisher.SnapshotNow().ok());
  EXPECT_EQ(publisher.snapshots_written(), before + 1);
  publisher.Stop(0);
}

TEST_F(PublisherTest, ServesPrometheusAndSnapshotOverHttp) {
  PublisherOptions options;
  options.dir = MakeParentDir("http");
  options.interval_ms = 50;
  options.serve = true;
  options.port = 0;  // ephemeral
  Publisher publisher(options);
  ASSERT_TRUE(publisher.Init().ok());
  ASSERT_NE(publisher.bound_port(), 0);

  std::string metrics = HttpGet(publisher.bound_port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("fairgen_process_rss_bytes"), std::string::npos);

  std::string snapshot = HttpGet(publisher.bound_port(), "/snapshot");
  EXPECT_NE(snapshot.find("200 OK"), std::string::npos);
  EXPECT_NE(snapshot.find("\"run_id\""), std::string::npos);

  std::string missing = HttpGet(publisher.bound_port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  const uint16_t port = publisher.bound_port();
  publisher.Stop(0);
  // The listener is down after Stop.
  EXPECT_EQ(HttpGet(port, "/metrics"), "");
}

TEST_F(PublisherTest, CrashFlushFinalizesWithoutJoin) {
  PublisherOptions options;
  options.dir = MakeParentDir("crash");
  options.interval_ms = 1000;
  Publisher publisher(options);
  ASSERT_TRUE(publisher.Init().ok());
  publisher.CrashFlush(137);
  auto manifest = json::ParseFile(publisher.run_dir() + "/run.json");
  ASSERT_TRUE(manifest.ok());
  EXPECT_TRUE(manifest->Find("finalized")->AsBool());
  EXPECT_EQ(manifest->GetDouble("exit_status", -1), 137.0);
  // Stop after a crash flush must not rewrite the crash verdict.
  publisher.Stop(0);
  manifest = json::ParseFile(publisher.run_dir() + "/run.json");
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->GetDouble("exit_status", -1), 137.0);
}

TEST_F(PublisherTest, GlobalStartStopRoundTrip) {
  PublisherOptions options;
  options.dir = MakeParentDir("global");
  options.interval_ms = 0;
  auto started = Publisher::StartGlobal(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  EXPECT_EQ(Publisher::Get(), *started);

  // A second global publisher is rejected while the first runs.
  EXPECT_FALSE(Publisher::StartGlobal(options).ok());

  Publisher::StopGlobal(0);
  EXPECT_FALSE((*started)->running());

  // After StopGlobal a new one may start.
  auto second = Publisher::StartGlobal(options);
  ASSERT_TRUE(second.ok());
  Publisher::StopGlobal(0);
}

TEST_F(PublisherTest, ExplicitRunIdIsHonored) {
  PublisherOptions options;
  options.dir = MakeParentDir("explicit");
  options.interval_ms = 0;
  options.run_id = "my-run";
  Publisher publisher(options);
  ASSERT_TRUE(publisher.Init().ok());
  EXPECT_EQ(publisher.run_id(), "my-run");
  EXPECT_TRUE(FileExists(options.dir + "/my-run/run.json"));
  publisher.Stop(0);
}

// Restarting into a parent directory that already holds a run with the
// same id must append a new suffixed run dir, never overwrite: the first
// run's finalized manifest is the crash-forensics record and a restart
// that clobbered it would erase the evidence.
TEST_F(PublisherTest, RunIdCollisionAppendsNewDirAndPreservesOldManifest) {
  PublisherOptions options;
  options.dir = MakeParentDir("collide");
  options.interval_ms = 0;
  options.run_id = "my-run";
  Publisher first(options);
  ASSERT_TRUE(first.Init().ok());
  first.Stop(3);

  Publisher second(options);
  ASSERT_TRUE(second.Init().ok());
  EXPECT_EQ(second.run_id(), "my-run-1");
  EXPECT_EQ(second.run_dir(), options.dir + "/my-run-1");
  second.Stop(0);

  // Both manifests exist, each with its own verdict and run id.
  auto old_manifest = json::ParseFile(options.dir + "/my-run/run.json");
  ASSERT_TRUE(old_manifest.ok());
  EXPECT_EQ(old_manifest->GetString("run_id", ""), "my-run");
  EXPECT_EQ(old_manifest->GetDouble("exit_status", -1), 3.0);
  EXPECT_TRUE(old_manifest->Find("finalized")->AsBool());
  auto new_manifest = json::ParseFile(options.dir + "/my-run-1/run.json");
  ASSERT_TRUE(new_manifest.ok());
  EXPECT_EQ(new_manifest->GetString("run_id", ""), "my-run-1");
  EXPECT_EQ(new_manifest->GetDouble("exit_status", -1), 0.0);
}

// A crash flush with records still buffered in the event journal must
// drain them into events.jsonl *before* the manifest finalizes, with the
// crash record last — `finalized: true` promises a complete journal.
TEST_F(PublisherTest, CrashFlushDrainsEventBufferBeforeFinalizing) {
  events::Journal::Global().ResetForTest();
  PublisherOptions options;
  options.dir = MakeParentDir("crash_events");
  options.interval_ms = 0;
  Publisher publisher(options);
  ASSERT_TRUE(publisher.Init().ok());

  events::Journal::Global().ResetForTest();
  events::Event event;
  event.type = events::Type::kStage;
  event.name = "fit";
  events::Journal::Global().Emit(event);
  event.name = "generate";
  events::Journal::Global().Emit(event);

  publisher.CrashFlush(137);
  EXPECT_EQ(events::Journal::Global().pending(), 0u);

  // Init journaled its own config/run_start record (already flushed with
  // snapshot 0); the crash flush appends the buffered pair plus the
  // crash record, in emission order.
  std::ifstream in(publisher.run_dir() + "/events.jsonl");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  auto start = json::Parse(lines[0]);
  ASSERT_TRUE(start.ok());
  EXPECT_EQ(start->GetString("name"), "run_start");
  auto fit = json::Parse(lines[1]);
  auto generate = json::Parse(lines[2]);
  auto crash = json::Parse(lines[3]);
  ASSERT_TRUE(fit.ok() && generate.ok() && crash.ok());
  EXPECT_EQ(fit->GetString("name"), "fit");
  EXPECT_EQ(generate->GetString("name"), "generate");
  EXPECT_EQ(crash->GetString("type"), "crash");
  EXPECT_EQ(crash->GetString("name"), "signal_flush");
  EXPECT_EQ(crash->Find("fields")->GetDouble("exit_status", -1), 137.0);

  auto manifest = json::ParseFile(publisher.run_dir() + "/run.json");
  ASSERT_TRUE(manifest.ok());
  EXPECT_TRUE(manifest->Find("finalized")->AsBool());
  events::Journal::Global().ResetForTest();
}

// Every snapshot tick drains the journal; a tick with nothing new must
// not duplicate previously flushed records in the append-only log.
TEST_F(PublisherTest, SnapshotTicksAppendEventsExactlyOnce) {
  events::Journal::Global().ResetForTest();
  PublisherOptions options;
  options.dir = MakeParentDir("tick_events");
  options.interval_ms = 0;
  Publisher publisher(options);
  ASSERT_TRUE(publisher.Init().ok());

  auto count_lines = [&] {
    std::ifstream in(publisher.run_dir() + "/events.jsonl");
    std::string line;
    size_t n = 0;
    while (std::getline(in, line)) ++n;
    return n;
  };

  // Init already flushed its config/run_start record; count deltas from
  // there.
  const size_t base = count_lines();
  events::Journal::Global().ResetForTest();
  events::Event event;
  event.type = events::Type::kProbe;
  event.name = "fairness";
  events::Journal::Global().Emit(event);
  ASSERT_TRUE(publisher.SnapshotNow().ok());
  EXPECT_EQ(count_lines(), base + 1);
  ASSERT_TRUE(publisher.SnapshotNow().ok());  // nothing new buffered
  EXPECT_EQ(count_lines(), base + 1);
  events::Journal::Global().Emit(event);
  ASSERT_TRUE(publisher.SnapshotNow().ok());
  EXPECT_EQ(count_lines(), base + 2);
  publisher.Stop(0);
  events::Journal::Global().ResetForTest();
}

}  // namespace
}  // namespace fairgen::telemetry
