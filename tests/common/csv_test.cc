#include "common/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace fairgen {
namespace {

TEST(TableTest, CsvRendering) {
  Table t({"model", "score"});
  t.AddRow({"ER", "0.5"});
  t.AddRow({"FairGen", "0.1"});
  EXPECT_EQ(t.ToCsv(), "model,score\nER,0.5\nFairGen,0.1\n");
}

TEST(TableTest, DoubleRowFormatting) {
  Table t({"model", "a", "b"});
  t.AddRow("x", {1.0, 0.25}, 2);
  EXPECT_EQ(t.ToCsv(), "model,a,b\nx,1.00,0.25\n");
}

TEST(TableTest, Dimensions) {
  Table t({"a", "b"});
  EXPECT_EQ(t.num_cols(), 2u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, AsciiAlignsColumns) {
  Table t({"name", "v"});
  t.AddRow({"longname", "1"});
  t.AddRow({"s", "22"});
  std::string ascii = t.ToAscii();
  std::istringstream lines(ascii);
  std::string header;
  std::string rule;
  std::string row1;
  std::string row2;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, row1);
  std::getline(lines, row2);
  // The value column starts at the same offset in every row.
  EXPECT_EQ(row1.find('1'), row2.find("22"));
  EXPECT_NE(rule.find("---"), std::string::npos);
}

TEST(TableTest, WriteCsvRoundTrips) {
  Table t({"k", "v"});
  t.AddRow({"x", "1"});
  std::string path = testing::TempDir() + "/fairgen_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), t.ToCsv());
  std::remove(path.c_str());
}

TEST(TableTest, WriteCsvToBadPathFails) {
  Table t({"k"});
  Status s = t.WriteCsv("/nonexistent_dir_xyz/file.csv");
  EXPECT_TRUE(s.IsIOError());
}

TEST(TableDeathTest, MismatchedRowAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "arity");
}

}  // namespace
}  // namespace fairgen
