#include "common/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace fairgen {
namespace {

TEST(TableTest, CsvRendering) {
  Table t({"model", "score"});
  t.AddRow({"ER", "0.5"});
  t.AddRow({"FairGen", "0.1"});
  EXPECT_EQ(t.ToCsv(), "model,score\nER,0.5\nFairGen,0.1\n");
}

TEST(TableTest, DoubleRowFormatting) {
  Table t({"model", "a", "b"});
  t.AddRow("x", {1.0, 0.25}, 2);
  EXPECT_EQ(t.ToCsv(), "model,a,b\nx,1.00,0.25\n");
}

TEST(TableTest, Dimensions) {
  Table t({"a", "b"});
  EXPECT_EQ(t.num_cols(), 2u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, AsciiAlignsColumns) {
  Table t({"name", "v"});
  t.AddRow({"longname", "1"});
  t.AddRow({"s", "22"});
  std::string ascii = t.ToAscii();
  std::istringstream lines(ascii);
  std::string header;
  std::string rule;
  std::string row1;
  std::string row2;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, row1);
  std::getline(lines, row2);
  // The value column starts at the same offset in every row.
  EXPECT_EQ(row1.find('1'), row2.find("22"));
  EXPECT_NE(rule.find("---"), std::string::npos);
}

TEST(TableTest, WriteCsvRoundTrips) {
  Table t({"k", "v"});
  t.AddRow({"x", "1"});
  std::string path = testing::TempDir() + "/fairgen_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), t.ToCsv());
  std::remove(path.c_str());
}

TEST(TableTest, WriteCsvToBadPathFails) {
  Table t({"k"});
  Status s = t.WriteCsv("/nonexistent_dir_xyz/file.csv");
  EXPECT_TRUE(s.IsIOError());
}

TEST(TableDeathTest, MismatchedRowAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "arity");
}

TEST(ParseCsvTest, RoundTripsTableOutput) {
  Table t({"model", "score"});
  t.AddRow({"ER", "0.5"});
  t.AddRow({"FairGen", "0.1"});
  auto parsed = ParseCsv(t.ToCsv());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->header(), t.header());
  EXPECT_EQ(parsed->rows(), t.rows());
}

TEST(ParseCsvTest, ToleratesMissingFinalNewline) {
  auto parsed = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_rows(), 1u);
  EXPECT_EQ(parsed->rows()[0], (std::vector<std::string>{"1", "2"}));
}

TEST(ParseCsvTest, ToleratesCrlfAndBlankAndCommentLines) {
  auto parsed = ParseCsv("a,b\r\n# comment\r\n\r\n1,2\r\n\n3,4\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->header(), (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(parsed->num_rows(), 2u);
  EXPECT_EQ(parsed->rows()[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(parsed->rows()[1], (std::vector<std::string>{"3", "4"}));
}

TEST(ParseCsvTest, RaggedRowFailsWithLineNumber) {
  auto parsed = ParseCsv("a,b\n1,2\n3\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
  EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos)
      << parsed.status().ToString();
}

TEST(ParseCsvTest, TruncatedLastRowFails) {
  // The writer died mid-row: the final line has fewer fields.
  auto parsed = ParseCsv("metric,type,field,value\nx,counter,value");
  EXPECT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
}

TEST(ParseCsvTest, EmptyDocumentFails) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_FALSE(ParseCsv("\n\n# only comments\n").ok());
}

TEST(ParseCsvTest, HeaderOnlyIsValid) {
  auto parsed = ParseCsv("a,b,c\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_cols(), 3u);
  EXPECT_EQ(parsed->num_rows(), 0u);
}

TEST(ReadCsvTest, ReadsFileWrittenByTable) {
  Table t({"k", "v"});
  t.AddRow({"x", "1"});
  std::string path = testing::TempDir() + "/fairgen_readcsv_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  auto parsed = ReadCsv(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->rows(), t.rows());
  std::remove(path.c_str());
}

TEST(ReadCsvTest, MissingFileFails) {
  auto parsed = ReadCsv("/no/such/fairgen_file.csv");
  EXPECT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsIOError());
}

}  // namespace
}  // namespace fairgen
