// Active-profiler suite: sampling, folded/top exports, restart semantics
// and concurrent draining. Lives apart from prof_off_test.cc because the
// first Start here installs the (gated) SIGPROF handler for the rest of
// the process — the off-by-default invariants need a binary that never
// starts the profiler.

#include "common/prof.h"

#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"

namespace fairgen::prof {
namespace {

// Burns CPU until `target` samples have been aggregated or ~30 s of spin
// passed. ITIMER_PROF counts CPU time, so a busy loop is the one reliable
// way to attract SIGPROF; the volatile sink keeps the loop from folding.
uint64_t SpinUntilSamples(uint64_t target) {
  Profiler& profiler = Profiler::Global();
  volatile uint64_t sink = 0;
  for (int round = 0; round < 30000; ++round) {
    for (uint64_t i = 0; i < 200000; ++i) sink = sink + i * i;
    profiler.Drain();
    if (profiler.samples() >= target) break;
  }
  return profiler.samples();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

// Structural contract of one collapsed-stack line:
// `frame[;frame...]<space><positive integer>`. The *last* space is the
// stack/count separator; frames themselves may contain spaces (demangled
// template and signature text), which flamegraph.pl parses fine.
void ExpectFoldedLineWellFormed(const std::string& line) {
  size_t space = line.rfind(' ');
  ASSERT_NE(space, std::string::npos) << line;
  ASSERT_GT(space, 0u) << line;
  const std::string count = line.substr(space + 1);
  ASSERT_FALSE(count.empty()) << line;
  for (char c : count) ASSERT_TRUE(c >= '0' && c <= '9') << line;
  EXPECT_NE(count, "0") << line;
}

class ProfTest : public ::testing::Test {
 protected:
  void TearDown() override { Profiler::Global().Stop(); }
};

TEST_F(ProfTest, StartRejectsBadHzAndDoubleStart) {
  Profiler& profiler = Profiler::Global();
  ProfilerOptions bad;
  bad.hz = 0;
  EXPECT_TRUE(profiler.Start(bad).IsInvalidArgument());
  bad.hz = 20000;
  EXPECT_TRUE(profiler.Start(bad).IsInvalidArgument());

  ProfilerOptions good;
  good.hz = 499;
  ASSERT_TRUE(profiler.Start(good).ok());
  EXPECT_TRUE(profiler.running());
  EXPECT_EQ(profiler.hz(), 499u);
  EXPECT_TRUE(profiler.Start(good).IsFailedPrecondition());
  profiler.Stop();
  EXPECT_FALSE(profiler.running());
  profiler.Stop();  // idempotent
}

TEST_F(ProfTest, CollectsSamplesAndExportsFoldedAndTop) {
  Profiler& profiler = Profiler::Global();
  ProfilerOptions options;
  options.hz = 997;  // fast sampling keeps the test short
  ASSERT_TRUE(profiler.Start(options).ok());
  ASSERT_GE(SpinUntilSamples(20), 20u) << "no SIGPROF samples arrived";
  profiler.Stop();

  // The aggregate stays readable after Stop.
  const uint64_t total = profiler.samples();
  ASSERT_GE(total, 20u);

  std::vector<FoldedStack> folded = profiler.ToFolded();
  ASSERT_FALSE(folded.empty());
  uint64_t folded_total = 0;
  for (const FoldedStack& stack : folded) {
    EXPECT_FALSE(stack.frames.empty());
    EXPECT_GT(stack.count, 0u);
    folded_total += stack.count;
    for (const std::string& frame : stack.frames) {
      EXPECT_FALSE(frame.empty());
      // ';' and newlines are the reserved separators of the folded
      // format; symbolization scrubs them out of demangled names.
      EXPECT_EQ(frame.find(';'), std::string::npos) << frame;
      EXPECT_EQ(frame.find('\n'), std::string::npos) << frame;
    }
  }
  EXPECT_EQ(folded_total, total) << "folded counts must sum to samples()";

  std::string text = profiler.ToFoldedText();
  ASSERT_FALSE(text.empty());
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    ExpectFoldedLineWellFormed(text.substr(start, end - start));
    start = end + 1;
  }

  std::vector<SymbolCount> top = profiler.TopSymbols(5);
  ASSERT_FALSE(top.empty());
  EXPECT_LE(top.size(), 5u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].samples, top[i].samples) << "top-N not sorted";
  }

  auto top_json = json::Parse(profiler.TopJson(5));
  ASSERT_TRUE(top_json.ok()) << top_json.status().ToString();
  EXPECT_EQ(top_json->GetDouble("schema_version", 0), 1.0);
  EXPECT_EQ(top_json->GetDouble("samples", 0),
            static_cast<double>(total));
  ASSERT_NE(top_json->Find("top"), nullptr);
  ASSERT_TRUE(top_json->Find("top")->is_array());

  // Window attribution: the full timeline covers every sample, an empty
  // window none.
  std::vector<SymbolCount> all =
      profiler.TopSymbolsInWindow(0, UINT64_MAX, 1000);
  uint64_t windowed = 0;
  for (const SymbolCount& s : all) windowed += s.samples;
  EXPECT_EQ(windowed, total);
  EXPECT_TRUE(profiler.TopSymbolsInWindow(5, 5, 10).empty());

  // Artifacts land in the run dir and validate structurally.
  const std::string dir = ::testing::TempDir() + "/fairgen_prof_artifacts";
  ::mkdir(dir.c_str(), 0755);
  ASSERT_TRUE(profiler.WriteArtifacts(dir).ok());
  EXPECT_TRUE(FileExists(dir + "/profile.folded"));
  EXPECT_TRUE(FileExists(dir + "/profile_top.json"));
}

TEST_F(ProfTest, RestartResetsAggregates) {
  Profiler& profiler = Profiler::Global();
  ProfilerOptions options;
  options.hz = 997;
  ASSERT_TRUE(profiler.Start(options).ok());
  ASSERT_GE(SpinUntilSamples(5), 5u);
  profiler.Stop();
  ASSERT_GE(profiler.samples(), 5u);

  // A new session must not inherit the previous session's samples.
  ASSERT_TRUE(profiler.Start(options).ok());
  profiler.Drain();
  EXPECT_LT(profiler.samples(), 5u);
  ASSERT_GE(SpinUntilSamples(5), 5u);
  profiler.Stop();
}

// Consumer side under concurrency: worker threads attract SIGPROF into
// their per-thread rings while the main thread drains continuously — the
// TSan pass over the observability/parallel labels certifies the SPSC
// ring handoff as race-free.
TEST_F(ProfTest, ConcurrentDrainWhileSampling) {
  Profiler& profiler = Profiler::Global();
  ProfilerOptions options;
  options.hz = 997;
  ASSERT_TRUE(profiler.Start(options).ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&stop] {
      volatile uint64_t sink = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (uint64_t i = 0; i < 50000; ++i) sink = sink + i * i;
      }
    });
  }
  // Pace the drain loop: an unpaced loop finishes its 2000 rounds in a
  // few milliseconds of wall time, before the spinners have burned enough
  // CPU for ITIMER_PROF to deliver anything.
  for (int round = 0; round < 2000; ++round) {
    profiler.Drain();
    if (profiler.samples() >= 50) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : workers) w.join();
  profiler.Stop();

  EXPECT_GT(profiler.samples(), 0u);
  // Every aggregated stack stays structurally sound after the concurrent
  // handoff (the corrupt-record guard would have discarded torn ones).
  for (const FoldedStack& stack : profiler.ToFolded()) {
    EXPECT_FALSE(stack.frames.empty());
    EXPECT_GT(stack.count, 0u);
  }
}

}  // namespace
}  // namespace fairgen::prof
