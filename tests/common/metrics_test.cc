#include "common/metrics.h"

#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/json.h"
#include "common/parallel.h"

namespace fairgen::metrics {
namespace {

// The registry is process-wide, so every test uses names under its own
// "test.<case>." prefix and restores the enabled flag it found.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { SetEnabled(true); }
  void TearDown() override { SetEnabled(true); }
};

TEST_F(MetricsTest, CounterBasics) {
  Counter& c = MetricsRegistry::Global().GetCounter("test.basics.counter");
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, GetReturnsSameInstance) {
  Counter& a = MetricsRegistry::Global().GetCounter("test.same.counter");
  Counter& b = MetricsRegistry::Global().GetCounter("test.same.counter");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = MetricsRegistry::Global().GetGauge("test.same.gauge");
  Gauge& g2 = MetricsRegistry::Global().GetGauge("test.same.gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST_F(MetricsTest, DisabledMutationsAreNoOps) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& c = reg.GetCounter("test.disabled.counter");
  Gauge& g = reg.GetGauge("test.disabled.gauge");
  Histogram& h = reg.GetHistogram("test.disabled.histogram", {1.0, 2.0});
  Series& s = reg.GetSeries("test.disabled.series");
  c.Reset();
  g.Reset();
  h.Reset();
  s.Reset();

  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  c.Increment(7);
  g.Set(3.5);
  h.Observe(1.5);
  s.Append(0, 1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(s.size(), 0u);

  SetEnabled(true);
  c.Increment(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST_F(MetricsTest, GaugeStoresLastValue) {
  Gauge& g = MetricsRegistry::Global().GetGauge("test.gauge.last");
  g.Set(1.25);
  g.Set(-7.5);
  EXPECT_EQ(g.value(), -7.5);
  g.Reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST_F(MetricsTest, HistogramBucketsAndOverflow) {
  Histogram& h = MetricsRegistry::Global().GetHistogram(
      "test.histogram.buckets", {1.0, 5.0, 10.0});
  h.Reset();
  ASSERT_EQ(h.num_buckets(), 4u);  // 3 bounds + overflow

  h.Observe(0.5);   // <= 1.0
  h.Observe(1.0);   // boundary: still <= 1.0
  h.Observe(3.0);   // <= 5.0
  h.Observe(10.0);  // boundary: <= 10.0
  h.Observe(11.0);  // overflow

  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 25.5);

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST_F(MetricsTest, SeriesKeepsAppendOrder) {
  Series& s = MetricsRegistry::Global().GetSeries("test.series.order");
  s.Reset();
  s.Append(0, 10.0);
  s.Append(1, 5.0);
  s.Append(2, 2.5);
  auto points = s.points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0], std::make_pair(0.0, 10.0));
  EXPECT_EQ(points[1], std::make_pair(1.0, 5.0));
  EXPECT_EQ(points[2], std::make_pair(2.0, 2.5));
  s.Reset();
  EXPECT_EQ(s.size(), 0u);
}

// Counters must sum exactly under concurrent increments from the parallel
// runtime — the property every per-chunk `Increment` in the walk samplers
// and generators relies on.
TEST_F(MetricsTest, ConcurrentIncrementsSumExactly) {
  Counter& c =
      MetricsRegistry::Global().GetCounter("test.concurrent.counter");
  Histogram& h = MetricsRegistry::Global().GetHistogram(
      "test.concurrent.histogram", {0.5});
  c.Reset();
  h.Reset();
  constexpr size_t kItems = 100000;
  for (uint32_t threads : {1u, 2u, 4u}) {
    c.Reset();
    h.Reset();
    ParallelFor(
        size_t{0}, kItems, size_t{64},
        [&](size_t i) {
          c.Increment();
          h.Observe(i % 2 == 0 ? 0.25 : 1.0);
        },
        threads);
    EXPECT_EQ(c.value(), kItems) << "threads=" << threads;
    EXPECT_EQ(h.count(), kItems) << "threads=" << threads;
    EXPECT_EQ(h.bucket_count(0), kItems / 2) << "threads=" << threads;
    EXPECT_EQ(h.bucket_count(1), kItems / 2) << "threads=" << threads;
  }
}

TEST_F(MetricsTest, SnapshotIsSortedAndTyped) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.snapshot.b").Increment(3);
  reg.GetGauge("test.snapshot.a").Set(1.5);
  std::vector<MetricSnapshot> snap = reg.Snapshot();
  ASSERT_GE(snap.size(), 2u);
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  }
  bool saw_counter = false;
  bool saw_gauge = false;
  for (const MetricSnapshot& m : snap) {
    if (m.name == "test.snapshot.b") {
      saw_counter = true;
      EXPECT_EQ(m.type, "counter");
      ASSERT_EQ(m.fields.size(), 1u);
      EXPECT_EQ(m.fields[0].second, 3.0);
    }
    if (m.name == "test.snapshot.a") {
      saw_gauge = true;
      EXPECT_EQ(m.type, "gauge");
      ASSERT_EQ(m.fields.size(), 1u);
      EXPECT_EQ(m.fields[0].second, 1.5);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
}

// The JSON and CSV exports flatten identically, so the CSV — parsed back
// through the repo's own CSV reader — must reproduce every field value the
// snapshot (and hence the JSON) reports, bit-for-bit (%.17g round-trip).
TEST_F(MetricsTest, CsvExportRoundTripsAgainstJson) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.roundtrip.counter").Increment(12345);
  reg.GetGauge("test.roundtrip.gauge").Set(0.1);  // not exactly representable
  Histogram& h =
      reg.GetHistogram("test.roundtrip.histogram", {1.0, 2.0});
  h.Reset();
  h.Observe(0.7);
  h.Observe(1.7);
  h.Observe(99.0);
  Series& s = reg.GetSeries("test.roundtrip.series");
  s.Reset();
  s.Append(0, 1.0 / 3.0);
  s.Append(1, 2.0 / 3.0);

  auto csv = ParseCsv(reg.ToCsv());
  ASSERT_TRUE(csv.ok()) << csv.status().ToString();
  ASSERT_EQ(csv->header(),
            (std::vector<std::string>{"metric", "type", "field", "value"}));

  // Index the parsed rows by (metric, field).
  std::map<std::pair<std::string, std::string>, std::pair<std::string, double>>
      parsed;
  for (const auto& row : csv->rows()) {
    ASSERT_EQ(row.size(), 4u);
    parsed[{row[0], row[2]}] = {row[1], std::strtod(row[3].c_str(), nullptr)};
  }

  std::vector<MetricSnapshot> snap = reg.Snapshot();
  std::string json = reg.ToJson();
  size_t checked = 0;
  for (const MetricSnapshot& m : snap) {
    EXPECT_NE(json.find("\"" + m.name + "\""), std::string::npos)
        << m.name << " missing from JSON export";
    for (const auto& [field, value] : m.fields) {
      auto it = parsed.find({m.name, field});
      ASSERT_NE(it, parsed.end())
          << m.name << "." << field << " missing from CSV export";
      EXPECT_EQ(it->second.first, m.type);
      // Exact: %.17g preserves doubles through text.
      EXPECT_EQ(it->second.second, value) << m.name << "." << field;
      ++checked;
    }
  }
  EXPECT_EQ(checked, csv->rows().size())
      << "CSV export has rows the snapshot does not";
  // This test alone registers 9 fields (1 counter + 1 gauge + 5 histogram
  // + 2 series); more when other tests ran in the same process.
  EXPECT_GE(checked, 9u);
}

// Counter-track support for the Chrome trace export: every appended point
// carries a monotone steady-clock timestamp, and `SeriesSnapshot` exposes
// all registered series (name-sorted) with those timestamps.
TEST_F(MetricsTest, SeriesPointsCarryMonotoneTimestamps) {
  Series& s = MetricsRegistry::Global().GetSeries("test.timestamps.series");
  s.Reset();
  s.Append(0, 1.0);
  s.Append(1, 2.5);
  std::vector<SeriesPoint> pts = s.points_with_time();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].step, 0.0);
  EXPECT_EQ(pts[0].value, 1.0);
  EXPECT_EQ(pts[1].step, 1.0);
  EXPECT_EQ(pts[1].value, 2.5);
  EXPECT_LE(pts[0].ts_ns, pts[1].ts_ns);
}

TEST_F(MetricsTest, SeriesSnapshotIsSortedAndComplete) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetSeries("test.seriessnap.b").Append(0, 2.0);
  reg.GetSeries("test.seriessnap.a").Append(0, 1.0);
  auto snap = reg.SeriesSnapshot();
  ASSERT_GE(snap.size(), 2u);
  bool saw_a = false;
  for (size_t i = 0; i < snap.size(); ++i) {
    if (i > 0) EXPECT_LT(snap[i - 1].first, snap[i].first);
    if (snap[i].first == "test.seriessnap.a") {
      saw_a = true;
      ASSERT_EQ(snap[i].second.size(), 1u);
      EXPECT_EQ(snap[i].second[0].value, 1.0);
    }
  }
  EXPECT_TRUE(saw_a);
}

// Metric names flow into JSON keys; a hostile name (quotes, backslash)
// must be escaped so the export stays parseable.
TEST_F(MetricsTest, JsonExportEscapesMetricNames) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.escape.\"quoted\\name\"").Increment(3);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("test.escape.\\\"quoted\\\\name\\\""),
            std::string::npos)
      << json;
  auto parsed = json::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  const json::Value* v = counters->Find("test.escape.\"quoted\\name\"");
  ASSERT_NE(v, nullptr) << "escaped key did not round-trip through parse";
  EXPECT_EQ(v->AsDouble(), 3.0);
}

TEST_F(MetricsTest, HistogramQuantileInterpolatesWithinBuckets) {
  Histogram& h = MetricsRegistry::Global().GetHistogram(
      "test.quantile.histogram", {10.0, 20.0, 40.0});
  h.Reset();
  EXPECT_EQ(h.Quantile(0.5), 0.0);  // empty histogram

  // 10 observations in [0,10], 10 in (10,20].
  for (int i = 0; i < 10; ++i) h.Observe(5.0);
  for (int i = 0; i < 10; ++i) h.Observe(15.0);

  // Median: target rank 10 lands exactly at the first bucket's upper
  // edge (10 of 20 observations are <= 10).
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);
  // p25 interpolates halfway into the first bucket [0, 10].
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 5.0);
  // p75 interpolates halfway into the second bucket (10, 20].
  EXPECT_DOUBLE_EQ(h.Quantile(0.75), 15.0);
  // q=1 is the top of the highest occupied bucket.
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 20.0);
}

// Quantile edge cases: empty histogram, a single sample, the q=0/q=1
// endpoints, out-of-range q (clamped), and NaN (both as the quantile
// argument and as an observation — NaN observations are rejected outright
// because they would land in the overflow bucket and poison sum()).
TEST_F(MetricsTest, HistogramQuantileEdgeCases) {
  Histogram& h = MetricsRegistry::Global().GetHistogram(
      "test.quantile_edge.histogram", {10.0, 20.0});
  h.Reset();

  // Empty: every quantile is 0, including NaN/out-of-range q.
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
  EXPECT_EQ(h.Quantile(std::nan("")), 0.0);

  // Single sample in the first bucket [0, 10]: q=0 pins the bucket's
  // bottom edge, q=1 its top edge, and everything in between
  // interpolates inside that one bucket.
  h.Observe(5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);

  // Out-of-range q clamps to [0, 1] instead of extrapolating.
  EXPECT_DOUBLE_EQ(h.Quantile(-3.0), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(7.0), h.Quantile(1.0));

  // NaN q on a populated histogram: defined fallback, not NaN out.
  EXPECT_EQ(h.Quantile(std::nan("")), 0.0);
  EXPECT_FALSE(std::isnan(h.Quantile(std::nan(""))));

  // NaN observations are dropped: count, sum and quantiles unchanged.
  const double sum_before = h.sum();
  h.Observe(std::nan(""));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), sum_before);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);
}

TEST_F(MetricsTest, HistogramQuantileOverflowReportsLargestFiniteBound) {
  Histogram& h = MetricsRegistry::Global().GetHistogram(
      "test.quantile_overflow.histogram", {1.0, 2.0});
  h.Reset();
  for (int i = 0; i < 4; ++i) h.Observe(100.0);  // all overflow
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 2.0);
}

TEST_F(MetricsTest, SnapshotCarriesHistogramQuantiles) {
  Histogram& h = MetricsRegistry::Global().GetHistogram(
      "test.quantile_snapshot.histogram", {1.0, 10.0});
  h.Reset();
  for (int i = 0; i < 100; ++i) h.Observe(0.5);

  bool found = false;
  for (const MetricSnapshot& snap : MetricsRegistry::Global().Snapshot()) {
    if (snap.name != "test.quantile_snapshot.histogram") continue;
    found = true;
    std::map<std::string, double> fields(snap.fields.begin(),
                                         snap.fields.end());
    ASSERT_TRUE(fields.count("p50"));
    ASSERT_TRUE(fields.count("p95"));
    ASSERT_TRUE(fields.count("p99"));
    EXPECT_DOUBLE_EQ(fields["p50"], h.Quantile(0.5));
    EXPECT_DOUBLE_EQ(fields["p95"], h.Quantile(0.95));
    EXPECT_DOUBLE_EQ(fields["p99"], h.Quantile(0.99));
  }
  ASSERT_TRUE(found);

  // The quantile fields ride into the JSON export with every other field.
  std::string json = MetricsRegistry::Global().ToJson();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST_F(MetricsTest, ResetValuesKeepsReferencesValid) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& c = reg.GetCounter("test.resetvalues.counter");
  Series& s = reg.GetSeries("test.resetvalues.series");
  c.Increment(5);
  s.Append(0, 1.0);
  reg.ResetValues();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(s.size(), 0u);
  c.Increment(2);  // the old reference still points at the live metric
  EXPECT_EQ(reg.GetCounter("test.resetvalues.counter").value(), 2u);
}

}  // namespace
}  // namespace fairgen::metrics
