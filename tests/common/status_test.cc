#include "common/status.h"

#include <gtest/gtest.h>

namespace fairgen {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_FALSE(s.IsNotFound());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "Not found: x");
  EXPECT_EQ(Status::IOError("y").ToString(), "IO error: y");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Internal("boom");
  Status copy = s;
  EXPECT_EQ(copy.code(), StatusCode::kInternal);
  EXPECT_EQ(copy.message(), "boom");
  // Original unchanged.
  EXPECT_EQ(s.message(), "boom");
}

TEST(StatusTest, CopyAssignOverwrites) {
  Status a = Status::NotFound("a");
  Status b = Status::IOError("b");
  a = b;
  EXPECT_TRUE(a.IsIOError());
  EXPECT_EQ(a.message(), "b");
}

TEST(StatusTest, SelfAssignmentIsSafe) {
  Status a = Status::NotFound("a");
  Status& ref = a;
  a = ref;
  EXPECT_TRUE(a.IsNotFound());
  EXPECT_EQ(a.message(), "a");
}

TEST(StatusTest, MoveTransfersState) {
  Status a = Status::OutOfRange("range");
  Status b = std::move(a);
  EXPECT_TRUE(b.IsOutOfRange());
  EXPECT_EQ(b.message(), "range");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfRange("").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_TRUE(Status::IOError("").IsIOError());
  EXPECT_TRUE(Status::NotImplemented("").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("").IsInternal());
  EXPECT_TRUE(Status::FailedPrecondition("").IsFailedPrecondition());
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    FAIRGEN_RETURN_NOT_OK(Status::NotFound("inner"));
    return Status::Internal("unreachable");
  };
  Status s = fails();
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "inner");
}

TEST(StatusTest, ReturnNotOkMacroPassesThroughOk) {
  auto succeeds = []() -> Status {
    FAIRGEN_RETURN_NOT_OK(Status::OK());
    return Status::Internal("reached");
  };
  EXPECT_TRUE(succeeds().IsInternal());
}

TEST(StatusCodeTest, ToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "Invalid argument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotImplemented),
               "Not implemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "Failed precondition");
}

}  // namespace
}  // namespace fairgen
