#include "common/json.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace fairgen::json {
namespace {

TEST(JsonParseTest, Scalars) {
  auto v = Parse("null");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());

  v = Parse("true");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_bool());
  EXPECT_TRUE(v->AsBool());

  v = Parse("false");
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->AsBool());

  v = Parse("  42  ");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_number());
  EXPECT_EQ(v->AsDouble(), 42.0);
}

TEST(JsonParseTest, Numbers) {
  auto v = Parse("-0.5");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsDouble(), -0.5);

  v = Parse("1e3");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsDouble(), 1000.0);

  v = Parse("2.5E-2");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsDouble(), 0.025);

  // %.17g round-trip: the payload the perf harness writes must come back
  // bit-exact.
  v = Parse("0.10000000000000001");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsDouble(), 0.1);
}

TEST(JsonParseTest, Strings) {
  auto v = Parse("\"plain\"");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_string());
  EXPECT_EQ(v->AsString(), "plain");

  v = Parse(R"("a\"b\\c\/d\n\t\r\b\f")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "a\"b\\c/d\n\t\r\b\f");
}

TEST(JsonParseTest, UnicodeEscapes) {
  auto v = Parse(R"("\u0041\u00e9")");  // "A" + e-acute as UTF-8
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "A\xc3\xa9");

  // The JsonEscape control-character form must round-trip.
  v = Parse(R"("\u0001")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), std::string("\x01", 1));
}

TEST(JsonParseTest, ArraysAndObjects) {
  auto v = Parse(R"({"a": [1, 2, 3], "b": {"nested": true}, "c": null})");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  const Value* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_EQ(a->AsArray()[1].AsDouble(), 2.0);
  const Value* b = v->Find("b");
  ASSERT_NE(b, nullptr);
  const Value* nested = b->Find("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_TRUE(nested->AsBool());
  EXPECT_EQ(v->Find("missing"), nullptr);

  auto empty = Parse("[]");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->AsArray().empty());
  empty = Parse("{}");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->AsObject().empty());
}

TEST(JsonParseTest, ConvenienceAccessors) {
  auto v = Parse(R"({"median_ms": 1.5, "scenario": "walks"})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetDouble("median_ms", -1.0), 1.5);
  EXPECT_EQ(v->GetDouble("absent", -1.0), -1.0);
  EXPECT_EQ(v->GetDouble("scenario", -1.0), -1.0) << "type mismatch";
  EXPECT_EQ(v->GetString("scenario", "x"), "walks");
  EXPECT_EQ(v->GetString("median_ms", "x"), "x") << "type mismatch";
}

TEST(JsonParseTest, MalformedInputsReportByteOffsets) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\" 1}", "tru", "1..2", "-", "\"unterm",
        "{\"a\": 1,}", "[1 2]", "nul", "\"bad\\q\""}) {
    auto v = Parse(bad);
    EXPECT_FALSE(v.ok()) << "accepted malformed input: " << bad;
    EXPECT_NE(v.status().ToString().find("at byte"), std::string::npos)
        << "no byte offset in: " << v.status().ToString();
  }
}

TEST(JsonParseTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(Parse("{} x").ok());
  EXPECT_FALSE(Parse("1 2").ok());
  EXPECT_TRUE(Parse("{} \n ").ok()) << "trailing whitespace is fine";
}

TEST(JsonParseTest, CapsNestingDepth) {
  std::string deep;
  for (int i = 0; i < 300; ++i) deep.push_back('[');
  for (int i = 0; i < 300; ++i) deep.push_back(']');
  EXPECT_FALSE(Parse(deep).ok());

  std::string ok;
  for (int i = 0; i < 50; ++i) ok.push_back('[');
  for (int i = 0; i < 50; ++i) ok.push_back(']');
  EXPECT_TRUE(Parse(ok).ok());
}

TEST(JsonParseFileTest, ReadsFileAndFlagsMissingOne) {
  std::string path = testing::TempDir() + "/fairgen_json_test.json";
  {
    std::ofstream out(path);
    out << R"({"schema_version": 1})";
  }
  auto v = ParseFile(path);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->GetDouble("schema_version"), 1.0);
  std::remove(path.c_str());

  EXPECT_FALSE(ParseFile(path).ok());
}

}  // namespace
}  // namespace fairgen::json
