// Golden-schema test for the Chrome trace-event export: records a small
// but representative trace (nested spans, multiple threads, span
// categories, one metrics series) and validates the emitted document
// against the checked-in fragment list in
// tests/golden/chrome_trace_schema.txt, then parses it with the repo's own
// JSON reader and checks the event structure Perfetto relies on.
//
// The schema path is injected by tests/CMakeLists.txt as the
// FAIRGEN_CHROME_TRACE_SCHEMA_PATH compile definition.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"

namespace fairgen::trace {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class ChromeTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().SetEnabled(false);
    Tracer::Global().Clear();
    metrics::SetEnabled(true);
  }
  void TearDown() override {
    Tracer::Global().SetEnabled(false);
    Tracer::Global().Clear();
    metrics::SetEnabled(true);
  }

  // Records the representative trace every test in this file validates:
  // a nested categorized span pair on the main thread, a parallel region
  // (so thread tracks > 0 exist), and a two-point metrics series (so a
  // counter track exists).
  void RecordSampleTrace() {
    Tracer::Global().SetEnabled(true);
    {
      ScopedSpan outer("chrometest.outer", Category::kTrain);
      ScopedSpan inner("chrometest.inner", Category::kWalk);
    }
    // A dedicated thread guarantees a second stable thread index (the
    // pool's dynamic chunk pickup could leave every chunk on the caller).
    std::thread([] {
      ScopedSpan span("chrometest.parallel", Category::kEval);
    }).join();
    metrics::Series& series =
        metrics::MetricsRegistry::Global().GetSeries("chrometest.series");
    series.Reset();
    series.Append(0, 1.5);
    series.Append(1, 2.5);
  }
};

TEST_F(ChromeTraceTest, ContainsEveryGoldenFragment) {
  RecordSampleTrace();
  std::string trace = Tracer::Global().ToChromeTrace();

  std::string schema = ReadFileOrDie(FAIRGEN_CHROME_TRACE_SCHEMA_PATH);
  size_t fragments_checked = 0;
  for (const std::string& raw_line : StrSplit(schema, '\n')) {
    std::string_view line = StrTrim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(trace.find(line), std::string::npos)
        << "Chrome trace export is missing golden fragment: " << line;
    ++fragments_checked;
  }
  EXPECT_GE(fragments_checked, 14u) << "schema file looks truncated";
}

TEST_F(ChromeTraceTest, ParsesAndCarriesSpanStructure) {
  RecordSampleTrace();
  auto doc = json::Parse(Tracer::Global().ToChromeTrace());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->GetString("displayTimeUnit"), "ms");

  const json::Value* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  bool saw_process_meta = false;
  bool saw_thread1_meta = false;
  bool saw_counter = false;
  const json::Value* outer = nullptr;
  const json::Value* inner = nullptr;
  for (const json::Value& e : events->AsArray()) {
    ASSERT_TRUE(e.is_object());
    const std::string ph = e.GetString("ph");
    if (ph == "M" && e.GetString("name") == "process_name") {
      saw_process_meta = true;
      EXPECT_EQ(e.Find("args")->GetString("name"), "fairgen");
    }
    if (ph == "M" && e.GetString("name") == "thread_name" &&
        e.GetDouble("tid", -1.0) == 1.0) {
      saw_thread1_meta = true;
    }
    if (ph == "C" && e.GetString("name") == "chrometest.series") {
      saw_counter = true;
      const json::Value* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      double v = args->GetDouble("value", -1.0);
      EXPECT_TRUE(v == 1.5 || v == 2.5) << v;
    }
    if (ph == "X" && e.GetString("name") == "chrometest.outer") outer = &e;
    if (ph == "X" && e.GetString("name") == "chrometest.inner") inner = &e;
  }
  EXPECT_TRUE(saw_process_meta);
  EXPECT_TRUE(saw_thread1_meta)
      << "parallel spans must surface extra thread tracks";
  EXPECT_TRUE(saw_counter)
      << "metrics series must render as a counter track";

  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Nesting: the inner span starts no earlier, lasts no longer, and sits
  // one level deeper on the same thread track.
  EXPECT_GE(inner->GetDouble("ts"), outer->GetDouble("ts"));
  EXPECT_LE(inner->GetDouble("dur"), outer->GetDouble("dur"));
  EXPECT_EQ(inner->GetDouble("tid"), outer->GetDouble("tid"));
  EXPECT_EQ(outer->Find("args")->GetDouble("depth"), 0.0);
  EXPECT_EQ(inner->Find("args")->GetDouble("depth"), 1.0);
  EXPECT_EQ(outer->GetString("cat"), "train");
  EXPECT_EQ(inner->GetString("cat"), "walk");
  // CPU columns exist and are sane: thread CPU time cannot exceed wall
  // time by more than rounding.
  EXPECT_GE(outer->GetDouble("tdur", -1.0), 0.0);
  EXPECT_GE(outer->GetDouble("tts", -1.0), 0.0);
}

TEST_F(ChromeTraceTest, WriteAutoDispatchesOnSuffix) {
  RecordSampleTrace();
  std::string base = testing::TempDir() + "/fairgen_chrome_trace";
  std::string perfetto_path = base + ".perfetto.json";
  std::string flat_path = base + ".json";
  ASSERT_TRUE(Tracer::Global().WriteAuto(perfetto_path).ok());
  ASSERT_TRUE(Tracer::Global().WriteAuto(flat_path).ok());

  std::string perfetto = ReadFileOrDie(perfetto_path);
  EXPECT_NE(perfetto.find("\"traceEvents\""), std::string::npos);
  std::string flat = ReadFileOrDie(flat_path);
  EXPECT_EQ(flat.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(flat.find("\"chrometest.outer\""), std::string::npos);

  std::remove(perfetto_path.c_str());
  std::remove(flat_path.c_str());
}

}  // namespace
}  // namespace fairgen::trace
