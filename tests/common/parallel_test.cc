#include "common/parallel.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace fairgen {
namespace {

TEST(ParallelForTest, EmptyRangeInvokesNothing) {
  std::atomic<int> calls{0};
  ParallelFor(size_t{0}, size_t{0}, 4, [&](size_t) { ++calls; });
  ParallelFor(size_t{5}, size_t{5}, 4, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(size_t{0}, kN, 7, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, GrainLargerThanRangeIsOneChunk) {
  std::atomic<int> chunks{0};
  std::atomic<size_t> covered{0};
  ParallelForChunks(size_t{3}, size_t{10}, 100,
                    [&](size_t lo, size_t hi, size_t chunk) {
                      ++chunks;
                      covered += hi - lo;
                      EXPECT_EQ(lo, 3u);
                      EXPECT_EQ(hi, 10u);
                      EXPECT_EQ(chunk, 0u);
                    });
  EXPECT_EQ(chunks.load(), 1);
  EXPECT_EQ(covered.load(), 7u);
}

TEST(ParallelForTest, ZeroGrainBehavesAsGrainOne) {
  EXPECT_EQ(ParallelNumChunks(0, 5, 0), 5u);
  std::atomic<int> calls{0};
  ParallelFor(size_t{0}, size_t{5}, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 5);
}

TEST(ParallelForTest, ChunkLayoutIsThreadCountIndependent) {
  auto layout = [](uint32_t threads) {
    std::vector<std::pair<size_t, size_t>> chunks(
        ParallelNumChunks(0, 103, 10));
    ParallelForChunks(
        size_t{0}, size_t{103}, 10,
        [&](size_t lo, size_t hi, size_t c) { chunks[c] = {lo, hi}; },
        threads);
    return chunks;
  };
  auto serial = layout(1);
  EXPECT_EQ(serial.size(), 11u);
  EXPECT_EQ(serial.front(), (std::pair<size_t, size_t>{0, 10}));
  EXPECT_EQ(serial.back(), (std::pair<size_t, size_t>{100, 103}));
  EXPECT_EQ(layout(2), serial);
  EXPECT_EQ(layout(4), serial);
  EXPECT_EQ(layout(16), serial);
}

TEST(ParallelForTest, NestedCallsRunInline) {
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 50;
  std::vector<std::atomic<uint64_t>> sums(kOuter);
  ParallelFor(size_t{0}, kOuter, 1, [&](size_t o) {
    EXPECT_TRUE(InParallelRegion() || ThreadPool::Global().max_parallelism() == 1);
    // The nested region must execute (serially) rather than deadlock.
    ParallelFor(size_t{0}, kInner, 4, [&](size_t i) { sums[o] += i; });
  });
  for (size_t o = 0; o < kOuter; ++o) {
    EXPECT_EQ(sums[o].load(), kInner * (kInner - 1) / 2);
  }
}

TEST(ParallelReduceTest, EmptyRangeReturnsIdentity) {
  double r = ParallelReduce(
      size_t{4}, size_t{4}, 8, 42.0,
      [](size_t, size_t, size_t) { return 1.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(r, 42.0);
}

TEST(ParallelReduceTest, OrderedSumMatchesSerial) {
  std::vector<double> values(2000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto sum_at = [&](uint32_t threads) {
    return ParallelReduce(
        size_t{0}, values.size(), 64, 0.0,
        [&](size_t lo, size_t hi, size_t) {
          double s = 0.0;
          for (size_t i = lo; i < hi; ++i) s += values[i];
          return s;
        },
        [](double a, double b) { return a + b; }, threads);
  };
  // Chunked reduction is bit-identical across thread counts (the FAROS
  // requirement the whole runtime is built around).
  double serial = sum_at(1);
  EXPECT_EQ(sum_at(2), serial);
  EXPECT_EQ(sum_at(4), serial);
  EXPECT_EQ(sum_at(16), serial);
}

TEST(ParallelReduceTest, CombineSeesChunksInOrder) {
  std::vector<size_t> combine_order;
  ParallelReduce(
      size_t{0}, size_t{100}, 10, size_t{0},
      [](size_t, size_t, size_t chunk) { return chunk; },
      [&](size_t acc, size_t chunk) {
        combine_order.push_back(chunk);
        return acc;
      },
      4);
  ASSERT_EQ(combine_order.size(), 10u);
  for (size_t c = 0; c < combine_order.size(); ++c) {
    EXPECT_EQ(combine_order[c], c);
  }
}

TEST(ThreadPoolTest, RunExecutesAllTasks) {
  std::atomic<uint64_t> sum{0};
  ThreadPool::Global().Run(257, 4, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), uint64_t{257} * 256 / 2);
}

TEST(ThreadPoolTest, BackToBackJobsDoNotInterfere) {
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> calls{0};
    ThreadPool::Global().Run(20, 8, [&](size_t) { ++calls; });
    ASSERT_EQ(calls.load(), 20) << "round " << round;
  }
}

TEST(SplitRngsTest, StreamsAreDeterministicAndIndependent) {
  Rng a(123);
  Rng b(123);
  std::vector<Rng> sa = SplitRngs(a, 4);
  std::vector<Rng> sb = SplitRngs(b, 4);
  ASSERT_EQ(sa.size(), 4u);
  for (size_t i = 0; i < sa.size(); ++i) {
    for (int draw = 0; draw < 16; ++draw) {
      EXPECT_EQ(sa[i].NextU32(), sb[i].NextU32());
    }
  }
  // Distinct streams should not collide on a short prefix.
  Rng c(123);
  std::vector<Rng> sc = SplitRngs(c, 2);
  bool differ = false;
  for (int draw = 0; draw < 16; ++draw) {
    if (sc[0].NextU32() != sc[1].NextU32()) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(SplitRngsTest, ParentAdvancesIdenticallyForEqualK) {
  Rng a(9);
  Rng b(9);
  SplitRngs(a, 8);
  SplitRngs(b, 8);
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(DefaultNumThreadsTest, OverrideIsHonored) {
  uint32_t saved = DefaultNumThreads();
  SetDefaultNumThreads(3);
  EXPECT_EQ(DefaultNumThreads(), 3u);
  SetDefaultNumThreads(saved);
  EXPECT_EQ(DefaultNumThreads(), saved);
}

}  // namespace
}  // namespace fairgen
