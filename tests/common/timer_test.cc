#include "common/timer.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace fairgen {
namespace {

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double elapsed = timer.ElapsedMillis();
  EXPECT_GE(elapsed, 15.0);
  EXPECT_LT(elapsed, 2000.0);  // generous upper bound for loaded machines
}

TEST(TimerTest, SecondsAndMillisAgree) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double seconds = timer.ElapsedSeconds();
  double millis = timer.ElapsedMillis();
  EXPECT_NEAR(millis, seconds * 1e3, seconds * 1e3 * 0.5 + 1.0);
}

TEST(TimerTest, ResetRestarts) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.Reset();
  EXPECT_LT(timer.ElapsedMillis(), 15.0);
}

TEST(TimerTest, MonotoneNonDecreasing) {
  Timer timer;
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    double now = timer.ElapsedSeconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace fairgen
