#include "common/result.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fairgen {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveValueUnsafeTransfersOwnership) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  std::unique_ptr<int> v = r.MoveValueUnsafe();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, DereferenceOperators) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(*r, "hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r = std::vector<int>{1, 2};
  r->push_back(3);
  EXPECT_EQ(r.ValueOrDie().size(), 3u);
}

TEST(ResultTest, CopyableWhenValueCopyable) {
  Result<std::string> a = std::string("x");
  Result<std::string> b = a;
  EXPECT_EQ(*b, "x");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  FAIRGEN_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return 2 * v;
}

TEST(ResultTest, AssignOrReturnOnSuccess) {
  Result<int> r = Doubled(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 10);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> r = Doubled(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultDeathTest, ValueOrDieAbortsOnError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_DEATH({ (void)r.ValueOrDie(); }, "gone");
}

}  // namespace
}  // namespace fairgen
