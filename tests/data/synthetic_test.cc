#include "data/synthetic.h"

#include <gtest/gtest.h>

#include "graph/conductance.h"
#include "graph/subgraph.h"

namespace fairgen {
namespace {

TEST(SyntheticTest, MatchesRequestedCounts) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 300;
  cfg.num_edges = 1500;
  cfg.num_classes = 4;
  cfg.protected_size = 40;
  Rng rng(1);
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->graph.num_nodes(), 300u);
  // Edge budget reached up to the isolated-node patching.
  EXPECT_GE(data->graph.num_edges(), 1500u);
  EXPECT_LE(data->graph.num_edges(), 1550u);
  EXPECT_EQ(data->protected_set.size(), 40u);
  EXPECT_EQ(data->num_classes, 4u);
}

TEST(SyntheticTest, EveryNodeLabeledWhenClassesRequested) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 100;
  cfg.num_edges = 400;
  cfg.num_classes = 3;
  Rng rng(2);
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  std::vector<uint32_t> counts(3, 0);
  for (int32_t y : data->labels) {
    ASSERT_NE(y, kUnlabeled);
    ASSERT_GE(y, 0);
    ASSERT_LT(y, 3);
    ++counts[static_cast<size_t>(y)];
  }
  for (uint32_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 100.0 / 3.0, 2.0);
  }
}

TEST(SyntheticTest, UnlabeledConfigHasNoLabels) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 50;
  cfg.num_edges = 120;
  Rng rng(3);
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  EXPECT_FALSE(data->has_labels());
  for (int32_t y : data->labels) EXPECT_EQ(y, kUnlabeled);
  EXPECT_FALSE(data->has_protected_group());
}

TEST(SyntheticTest, NoIsolatedNodes) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 200;
  cfg.num_edges = 500;
  cfg.num_classes = 4;
  Rng rng(4);
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  for (NodeId v = 0; v < data->graph.num_nodes(); ++v) {
    EXPECT_GE(data->graph.Degree(v), 1u);
  }
}

TEST(SyntheticTest, CommunityStructurePresent) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 200;
  cfg.num_edges = 1200;
  cfg.num_classes = 4;
  cfg.intra_class_affinity = 8.0;
  Rng rng(5);
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  uint64_t intra = 0;
  for (const Edge& e : data->graph.ToEdgeList()) {
    if (data->labels[e.u] == data->labels[e.v]) ++intra;
  }
  double intra_fraction =
      static_cast<double>(intra) / data->graph.num_edges();
  // Random baseline would be ~25%; affinity 8 should push well past 50%.
  EXPECT_GT(intra_fraction, 0.55);
}

TEST(SyntheticTest, ProtectedGroupIsUnderRepresented) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 300;
  cfg.num_edges = 2000;
  cfg.num_classes = 4;
  cfg.protected_size = 50;
  Rng rng(6);
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  uint64_t protected_volume = data->graph.Volume(data->protected_set);
  double avg_protected = static_cast<double>(protected_volume) /
                         data->protected_set.size();
  double avg_overall = 2.0 * static_cast<double>(data->graph.num_edges()) /
                       data->graph.num_nodes();
  EXPECT_LT(avg_protected, avg_overall);
}

TEST(SyntheticTest, ProtectedGroupHasInternalStructure) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 300;
  cfg.num_edges = 2000;
  cfg.num_classes = 4;
  cfg.protected_size = 50;
  cfg.protected_cohesion = 6.0;
  Rng rng(7);
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  auto sub = InducedSubgraph(data->graph, data->protected_set);
  ASSERT_TRUE(sub.ok());
  EXPECT_GT(sub->graph.num_edges(), 10u);
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 80;
  cfg.num_edges = 300;
  cfg.num_classes = 2;
  cfg.protected_size = 10;
  Rng a(42);
  Rng b(42);
  auto d1 = GenerateSynthetic(cfg, a);
  auto d2 = GenerateSynthetic(cfg, b);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d1->graph.ToEdgeList(), d2->graph.ToEdgeList());
  EXPECT_EQ(d1->labels, d2->labels);
  EXPECT_EQ(d1->protected_set, d2->protected_set);
}

TEST(SyntheticTest, InvalidConfigsRejected) {
  Rng rng(8);
  SyntheticGraphConfig tiny;
  tiny.num_nodes = 2;
  EXPECT_FALSE(GenerateSynthetic(tiny, rng).ok());
  SyntheticGraphConfig overfull;
  overfull.num_nodes = 10;
  overfull.num_edges = 100;
  EXPECT_FALSE(GenerateSynthetic(overfull, rng).ok());
  SyntheticGraphConfig all_protected;
  all_protected.num_nodes = 10;
  all_protected.num_edges = 20;
  all_protected.protected_size = 10;
  EXPECT_FALSE(GenerateSynthetic(all_protected, rng).ok());
}

TEST(FewShotLabelsTest, KeepsExactlyPerClass) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 150;
  cfg.num_edges = 800;
  cfg.num_classes = 3;
  Rng rng(9);
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  std::vector<int32_t> few = FewShotLabels(*data, 5, rng);
  std::vector<uint32_t> counts(3, 0);
  for (NodeId v = 0; v < few.size(); ++v) {
    if (few[v] != kUnlabeled) {
      // A kept label must agree with the ground truth.
      EXPECT_EQ(few[v], data->labels[v]);
      ++counts[static_cast<size_t>(few[v])];
    }
  }
  for (uint32_t c : counts) EXPECT_EQ(c, 5u);
}

TEST(FewShotLabelsTest, PicksWellConnectedRepresentatives) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 150;
  cfg.num_edges = 900;
  cfg.num_classes = 3;
  cfg.intra_class_affinity = 10.0;
  Rng rng(10);
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  std::vector<int32_t> few = FewShotLabels(*data, 4, rng);
  // Kept nodes should have mostly same-class neighbors (representative of
  // their diffusion cores).
  for (NodeId v = 0; v < few.size(); ++v) {
    if (few[v] == kUnlabeled) continue;
    auto nbrs = data->graph.Neighbors(v);
    uint32_t same = 0;
    for (NodeId u : nbrs) {
      if (data->labels[u] == few[v]) ++same;
    }
    EXPECT_GT(static_cast<double>(same) / nbrs.size(), 0.5);
  }
}

TEST(FewShotLabelsTest, UnlabeledDataGivesNothing) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 40;
  cfg.num_edges = 100;
  Rng rng(11);
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  std::vector<int32_t> few = FewShotLabels(*data, 5, rng);
  for (int32_t y : few) EXPECT_EQ(y, kUnlabeled);
}

}  // namespace
}  // namespace fairgen
