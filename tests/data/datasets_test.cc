#include "data/datasets.h"

#include <gtest/gtest.h>

namespace fairgen {
namespace {

TEST(DatasetsTest, TableIHasSevenRows) {
  const auto& specs = TableIDatasets();
  ASSERT_EQ(specs.size(), 7u);
  EXPECT_EQ(specs[0].name, "EMAIL");
  EXPECT_EQ(specs[6].name, "ACM");
}

TEST(DatasetsTest, TableIStatisticsMatchPaper) {
  const auto& specs = TableIDatasets();
  // Spot-check the exact Table I numbers.
  EXPECT_EQ(specs[0].config.num_nodes, 1005u);
  EXPECT_EQ(specs[0].config.num_edges, 25571u);
  EXPECT_EQ(specs[2].name, "BLOG");
  EXPECT_EQ(specs[2].config.num_classes, 6u);
  EXPECT_EQ(specs[2].config.protected_size, 300u);
  EXPECT_EQ(specs[3].name, "FLICKR");
  EXPECT_EQ(specs[3].config.num_nodes, 7575u);
  EXPECT_EQ(specs[3].config.protected_size, 450u);
  EXPECT_EQ(specs[6].config.num_nodes, 16484u);
  EXPECT_EQ(specs[6].config.num_classes, 9u);
  EXPECT_EQ(specs[6].config.protected_size, 597u);
}

TEST(DatasetsTest, LabeledSubsetIsBlogFlickrAcm) {
  auto labeled = LabeledTableIDatasets();
  ASSERT_EQ(labeled.size(), 3u);
  EXPECT_EQ(labeled[0].name, "BLOG");
  EXPECT_EQ(labeled[1].name, "FLICKR");
  EXPECT_EQ(labeled[2].name, "ACM");
}

TEST(DatasetsTest, ScalePreservesAverageDegreeForSparseGraphs) {
  DatasetSpec spec = TableIDatasets()[6];  // ACM (sparse enough at 0.1)
  DatasetSpec scaled = ScaleDataset(spec, 0.1);
  double orig_avg = 2.0 * static_cast<double>(spec.config.num_edges) /
                    spec.config.num_nodes;
  double scaled_avg = 2.0 * static_cast<double>(scaled.config.num_edges) /
                      scaled.config.num_nodes;
  EXPECT_NEAR(scaled_avg, orig_avg, orig_avg * 0.25);
  EXPECT_EQ(scaled.config.num_classes, spec.config.num_classes);
  EXPECT_GT(scaled.config.protected_size, 0u);
}

TEST(DatasetsTest, ScaleCapsDensityOfDenseGraphs) {
  // BLOG's average degree (~139) cannot be preserved at small n; the
  // scaled spec must cap density at 6% (see ScaleDataset docs).
  DatasetSpec spec = TableIDatasets()[2];  // BLOG
  DatasetSpec scaled = ScaleDataset(spec, 0.05);
  double max_pairs = static_cast<double>(scaled.config.num_nodes) *
                     (scaled.config.num_nodes - 1) / 2.0;
  double density = static_cast<double>(scaled.config.num_edges) / max_pairs;
  EXPECT_LE(density, 0.061);
  EXPECT_GT(density, 0.03);
}

TEST(DatasetsTest, ScaleKeepsEdgeBudgetFeasible) {
  DatasetSpec spec = TableIDatasets()[2];  // dense BLOG
  DatasetSpec scaled = ScaleDataset(spec, 0.02);
  uint64_t max_edges = static_cast<uint64_t>(scaled.config.num_nodes) *
                       (scaled.config.num_nodes - 1) / 2;
  EXPECT_LE(scaled.config.num_edges, max_edges);
}

TEST(DatasetsTest, LoadDatasetCaseInsensitive) {
  auto data = LoadDataset("blog", 0.05, 7);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->name, "BLOG");
  EXPECT_TRUE(data->has_labels());
  EXPECT_TRUE(data->has_protected_group());
}

TEST(DatasetsTest, LoadUnknownDatasetFails) {
  auto data = LoadDataset("REDDIT", 0.1, 1);
  EXPECT_FALSE(data.ok());
  EXPECT_TRUE(data.status().IsNotFound());
}

TEST(DatasetsTest, MakeDatasetDeterministic) {
  DatasetSpec spec = ScaleDataset(TableIDatasets()[0], 0.1);
  auto a = MakeDataset(spec, 99);
  auto b = MakeDataset(spec, 99);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->graph.ToEdgeList(), b->graph.ToEdgeList());
}

TEST(DatasetsTest, ScaledDatasetsAreGenerable) {
  for (const DatasetSpec& spec : TableIDatasets()) {
    DatasetSpec scaled = ScaleDataset(spec, 0.04);
    auto data = MakeDataset(scaled, 5);
    ASSERT_TRUE(data.ok()) << spec.name << ": " << data.status().ToString();
    EXPECT_EQ(data->graph.num_nodes(), scaled.config.num_nodes);
    if (spec.config.num_classes > 0) {
      EXPECT_TRUE(data->has_protected_group()) << spec.name;
    }
  }
}

}  // namespace
}  // namespace fairgen
