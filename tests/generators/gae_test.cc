#include "generators/gae.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace fairgen {
namespace {

GaeConfig QuickConfig() {
  GaeConfig cfg;
  cfg.feature_dim = 12;
  cfg.hidden_dim = 12;
  cfg.latent_dim = 8;
  cfg.epochs = 30;
  cfg.edges_per_epoch = 128;
  cfg.candidate_multiplier = 20.0;
  return cfg;
}

LabeledGraph SmallGraph(uint64_t seed) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 80;
  cfg.num_edges = 400;
  cfg.num_classes = 2;
  Rng rng(seed);
  auto data = GenerateSynthetic(cfg, rng);
  EXPECT_TRUE(data.ok());
  return data.MoveValueUnsafe();
}

TEST(NormalizedAdjacencyTest, RowsIncludeSelfLoop) {
  auto g = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(g.ok());
  auto s = NormalizedAdjacency(*g);
  EXPECT_EQ(s->rows, 3u);
  // Node 0: self loop + neighbor 1 -> 2 entries.
  EXPECT_EQ(s->offsets[1] - s->offsets[0], 2u);
  // Node 1: self loop + 2 neighbors -> 3 entries.
  EXPECT_EQ(s->offsets[2] - s->offsets[1], 3u);
}

TEST(NormalizedAdjacencyTest, ValuesMatchFormula) {
  auto g = Graph::FromEdges(2, {{0, 1}});
  ASSERT_TRUE(g.ok());
  auto s = NormalizedAdjacency(*g);
  // deg+1 = 2 for both: self = 1/2, cross = 1/2.
  for (float v : s->values) {
    EXPECT_NEAR(v, 0.5f, 1e-6);
  }
}

TEST(NormalizedAdjacencyTest, OperatorIsSymmetric) {
  LabeledGraph data = SmallGraph(1);
  auto s = NormalizedAdjacency(data.graph);
  // Apply to basis-like vectors and check <S e_i, e_j> == <e_i, S e_j>
  // for a few pairs.
  nn::Tensor x(data.graph.num_nodes(), 1);
  x.at(3, 0) = 1.0f;
  nn::Tensor sx = s->Apply(x);
  nn::Tensor y(data.graph.num_nodes(), 1);
  y.at(7, 0) = 1.0f;
  nn::Tensor sy = s->Apply(y);
  EXPECT_NEAR(sx.at(7, 0), sy.at(3, 0), 1e-6);
}

TEST(GaeGeneratorTest, TrainsAndGenerates) {
  LabeledGraph data = SmallGraph(2);
  GaeGenerator gen(QuickConfig());
  EXPECT_EQ(gen.name(), "GAE");
  Rng rng(2);
  ASSERT_TRUE(gen.Fit(data.graph, rng).ok());
  EXPECT_TRUE(std::isfinite(gen.final_loss()));
  auto out = gen.Generate(rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_nodes(), data.graph.num_nodes());
  EXPECT_LE(out->num_edges(), data.graph.num_edges());
  EXPECT_GT(out->num_edges(), data.graph.num_edges() / 2);
}

TEST(GaeGeneratorTest, TrainingReducesLoss) {
  LabeledGraph data = SmallGraph(3);
  GaeConfig short_cfg = QuickConfig();
  short_cfg.epochs = 2;
  GaeGenerator short_gen(short_cfg);
  GaeConfig long_cfg = QuickConfig();
  long_cfg.epochs = 80;
  GaeGenerator long_gen(long_cfg);
  Rng rng_a(3);
  Rng rng_b(3);
  ASSERT_TRUE(short_gen.Fit(data.graph, rng_a).ok());
  ASSERT_TRUE(long_gen.Fit(data.graph, rng_b).ok());
  EXPECT_LT(long_gen.final_loss(), short_gen.final_loss());
}

TEST(GaeGeneratorTest, RejectsEmptyGraph) {
  GaeGenerator gen(QuickConfig());
  Rng rng(4);
  EXPECT_TRUE(gen.Fit(Graph::Empty(10), rng).IsInvalidArgument());
}

TEST(GaeGeneratorTest, GenerateBeforeFitFails) {
  GaeGenerator gen(QuickConfig());
  Rng rng(5);
  EXPECT_TRUE(gen.Generate(rng).status().IsFailedPrecondition());
}

}  // namespace
}  // namespace fairgen
