// VGAE (variational GAE) extension tests, plus the ExpOp it relies on.

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "generators/gae.h"
#include "nn/grad_check.h"
#include "nn/ops.h"

namespace fairgen {
namespace {

TEST(ExpOpTest, ForwardMatchesStdExp) {
  nn::Var x = nn::MakeParameter(
      nn::Tensor(1, 3, std::vector<float>{-1.0f, 0.0f, 2.0f}));
  nn::Var y = nn::ExpOp(x);
  EXPECT_NEAR(y->value.at(0, 0), std::exp(-1.0f), 1e-6);
  EXPECT_NEAR(y->value.at(0, 1), 1.0f, 1e-6);
  EXPECT_NEAR(y->value.at(0, 2), std::exp(2.0f), 1e-4);
}

TEST(ExpOpTest, ClampsLargeInputs) {
  nn::Var x = nn::MakeParameter(nn::Tensor(1, 1, 100.0f));
  nn::Var y = nn::ExpOp(x, /*max_input=*/10.0f);
  EXPECT_NEAR(y->value.ScalarValue(), std::exp(10.0f), 1.0f);
  // Clamped region has zero gradient.
  nn::ZeroGrad({x});
  nn::Backward(nn::MeanAll(y));
  EXPECT_EQ(x->grad.ScalarValue(), 0.0f);
}

TEST(ExpOpTest, GradCheck) {
  Rng rng(1);
  nn::Var x = nn::MakeParameter(nn::Tensor::Randn(3, 4, 0.5f, rng));
  auto loss = [&]() { return nn::MeanAll(nn::ExpOp(x)); };
  Rng check_rng(2);
  auto result = nn::CheckGradients(loss, {x}, 8, check_rng);
  EXPECT_LT(result.max_rel_error, 2e-2);
}

GaeConfig VgaeConfig() {
  GaeConfig cfg;
  cfg.feature_dim = 12;
  cfg.hidden_dim = 12;
  cfg.latent_dim = 8;
  cfg.epochs = 40;
  cfg.edges_per_epoch = 128;
  cfg.candidate_multiplier = 20.0;
  cfg.variational = true;
  return cfg;
}

LabeledGraph SmallGraph(uint64_t seed) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 70;
  cfg.num_edges = 350;
  Rng rng(seed);
  auto data = GenerateSynthetic(cfg, rng);
  EXPECT_TRUE(data.ok());
  return data.MoveValueUnsafe();
}

TEST(VgaeTest, NameReflectsMode) {
  GaeGenerator gae;
  EXPECT_EQ(gae.name(), "GAE");
  GaeGenerator vgae(VgaeConfig());
  EXPECT_EQ(vgae.name(), "VGAE");
}

TEST(VgaeTest, TrainsAndGenerates) {
  LabeledGraph data = SmallGraph(3);
  GaeGenerator vgae(VgaeConfig());
  Rng rng(3);
  ASSERT_TRUE(vgae.Fit(data.graph, rng).ok());
  EXPECT_TRUE(std::isfinite(vgae.final_loss()));
  auto out = vgae.Generate(rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_nodes(), data.graph.num_nodes());
  EXPECT_GT(out->num_edges(), data.graph.num_edges() / 2);
}

TEST(VgaeTest, GeneratedEdgesBetterThanRandom) {
  LabeledGraph data = SmallGraph(4);
  GaeConfig cfg = VgaeConfig();
  cfg.epochs = 80;
  GaeGenerator vgae(cfg);
  Rng rng(4);
  ASSERT_TRUE(vgae.Fit(data.graph, rng).ok());
  auto out = vgae.Generate(rng);
  ASSERT_TRUE(out.ok());
  uint64_t overlap = 0;
  for (const Edge& e : out->ToEdgeList()) {
    if (data.graph.HasEdge(e.u, e.v)) ++overlap;
  }
  double precision =
      static_cast<double>(overlap) / static_cast<double>(out->num_edges());
  // Random pairs would hit ~m / C(n,2) = 14.5%.
  EXPECT_GT(precision, 0.25);
}

TEST(VgaeTest, ScoreEdgesWorksInVariationalMode) {
  LabeledGraph data = SmallGraph(5);
  GaeGenerator vgae(VgaeConfig());
  Rng rng(5);
  ASSERT_TRUE(vgae.Fit(data.graph, rng).ok());
  auto scored = vgae.ScoreEdges(rng);
  ASSERT_TRUE(scored.ok());
  EXPECT_GT(scored->size(), 100u);
}

TEST(VgaeTest, KlTermKeepsLatentsBounded) {
  // With the KL term, posterior means should stay moderate; a crude but
  // effective regression test that the variational path is actually wired.
  LabeledGraph data = SmallGraph(6);
  GaeConfig cfg = VgaeConfig();
  cfg.kl_weight = 1.0f;  // strong prior pull
  cfg.epochs = 60;
  GaeGenerator vgae(cfg);
  Rng rng(6);
  ASSERT_TRUE(vgae.Fit(data.graph, rng).ok());
  auto scored = vgae.ScoreEdges(rng);
  ASSERT_TRUE(scored.ok());
  // Sigmoid scores near 0.5 when latents are prior-dominated; just assert
  // everything is finite and within (0, 1.1).
  for (const auto& [edge, score] : *scored) {
    EXPECT_GT(score, 0.0);
    EXPECT_LT(score, 1.1);
  }
}

}  // namespace
}  // namespace fairgen
