#include "generators/er.h"

#include <gtest/gtest.h>

#include "graph/components.h"

namespace fairgen {
namespace {

TEST(SampleErdosRenyiTest, ExactEdgeCount) {
  Rng rng(1);
  auto g = SampleErdosRenyi(100, 250, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 100u);
  EXPECT_EQ(g->num_edges(), 250u);
}

TEST(SampleErdosRenyiTest, NoSelfLoopsOrDuplicates) {
  Rng rng(2);
  auto g = SampleErdosRenyi(50, 400, rng);
  ASSERT_TRUE(g.ok());
  // Graph invariants guarantee this; re-verify through the edge list.
  auto edges = g->ToEdgeList();
  EXPECT_EQ(edges.size(), 400u);
  for (const Edge& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(SampleErdosRenyiTest, CompleteGraphReachable) {
  Rng rng(3);
  auto g = SampleErdosRenyi(6, 15, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 15u);
}

TEST(SampleErdosRenyiTest, TooManyEdgesRejected) {
  Rng rng(4);
  EXPECT_FALSE(SampleErdosRenyi(4, 7, rng).ok());
}

TEST(SampleErdosRenyiPTest, EdgeFractionMatchesP) {
  Rng rng(5);
  constexpr uint32_t kN = 200;
  constexpr double kP = 0.05;
  auto g = SampleErdosRenyiP(kN, kP, rng);
  ASSERT_TRUE(g.ok());
  double max_edges = kN * (kN - 1) / 2.0;
  double observed = static_cast<double>(g->num_edges()) / max_edges;
  EXPECT_NEAR(observed, kP, 0.01);
}

TEST(SampleErdosRenyiPTest, ZeroAndOne) {
  Rng rng(6);
  auto empty = SampleErdosRenyiP(10, 0.0, rng);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_edges(), 0u);
  auto full = SampleErdosRenyiP(10, 1.0, rng);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->num_edges(), 45u);
}

TEST(SampleErdosRenyiPTest, InvalidPRejected) {
  Rng rng(7);
  EXPECT_FALSE(SampleErdosRenyiP(10, -0.1, rng).ok());
  EXPECT_FALSE(SampleErdosRenyiP(10, 1.5, rng).ok());
}

TEST(ErdosRenyiGeneratorTest, PreservesCounts) {
  Rng rng(8);
  auto input = SampleErdosRenyi(80, 200, rng);
  ASSERT_TRUE(input.ok());
  ErdosRenyiGenerator gen;
  ASSERT_TRUE(gen.Fit(*input, rng).ok());
  EXPECT_EQ(gen.name(), "ER");
  auto out = gen.Generate(rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_nodes(), 80u);
  EXPECT_EQ(out->num_edges(), 200u);
}

TEST(ErdosRenyiGeneratorTest, GenerateBeforeFitFails) {
  ErdosRenyiGenerator gen;
  Rng rng(9);
  EXPECT_TRUE(gen.Generate(rng).status().IsFailedPrecondition());
}

TEST(ErdosRenyiGeneratorTest, OutputIsRandomized) {
  Rng rng(10);
  auto input = SampleErdosRenyi(60, 150, rng);
  ASSERT_TRUE(input.ok());
  ErdosRenyiGenerator gen;
  ASSERT_TRUE(gen.Fit(*input, rng).ok());
  auto a = gen.Generate(rng);
  auto b = gen.Generate(rng);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->ToEdgeList(), b->ToEdgeList());
}

}  // namespace
}  // namespace fairgen
