// Covers the shared WalkLMGenerator machinery through its two concrete
// models: NetGAN (LSTM) and TagGen (transformer).

#include <gtest/gtest.h>

#include <cmath>
#include "data/synthetic.h"
#include "generators/netgan.h"
#include "generators/taggen.h"
#include "walk/random_walk.h"

namespace fairgen {
namespace {

WalkLMTrainConfig QuickBudget() {
  WalkLMTrainConfig cfg;
  cfg.walk_length = 8;
  cfg.num_walks = 60;
  cfg.epochs = 1;
  cfg.batch_size = 8;
  cfg.gen_transition_multiplier = 3.0;
  return cfg;
}

LabeledGraph SmallGraph(uint64_t seed) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 60;
  cfg.num_edges = 300;
  Rng rng(seed);
  auto data = GenerateSynthetic(cfg, rng);
  EXPECT_TRUE(data.ok());
  return data.MoveValueUnsafe();
}

TEST(NetGanGeneratorTest, FitGenerateRoundTrip) {
  LabeledGraph data = SmallGraph(1);
  NetGanConfig cfg;
  cfg.train = QuickBudget();
  cfg.dim = 16;
  cfg.hidden_dim = 16;
  NetGanGenerator gen(cfg);
  EXPECT_EQ(gen.name(), "NetGAN");
  EXPECT_FALSE(gen.fitted());
  Rng rng(1);
  ASSERT_TRUE(gen.Fit(data.graph, rng).ok());
  EXPECT_TRUE(gen.fitted());
  ASSERT_NE(gen.model(), nullptr);
  auto out = gen.Generate(rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_nodes(), 60u);
  EXPECT_LE(out->num_edges(), 300u);
  EXPECT_GT(out->num_edges(), 0u);
}

TEST(TagGenGeneratorTest, FitGenerateRoundTrip) {
  LabeledGraph data = SmallGraph(2);
  TagGenConfig cfg;
  cfg.train = QuickBudget();
  cfg.dim = 16;
  cfg.num_heads = 2;
  TagGenGenerator gen(cfg);
  EXPECT_EQ(gen.name(), "TagGen");
  Rng rng(2);
  ASSERT_TRUE(gen.Fit(data.graph, rng).ok());
  auto out = gen.Generate(rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_nodes(), 60u);
  EXPECT_GT(out->num_edges(), 0u);
}

TEST(WalkLMGeneratorTest, GenerateBeforeFitFails) {
  NetGanGenerator gen;
  Rng rng(3);
  EXPECT_TRUE(gen.Generate(rng).status().IsFailedPrecondition());
}

TEST(WalkLMGeneratorTest, RejectsEmptyGraph) {
  TagGenGenerator gen;
  Rng rng(4);
  EXPECT_TRUE(gen.Fit(Graph::Empty(5), rng).IsInvalidArgument());
}

TEST(WalkLMGeneratorTest, TrainingReducesHeldOutNll) {
  LabeledGraph data = SmallGraph(5);
  NetGanConfig cfg;
  cfg.train = QuickBudget();
  cfg.train.num_walks = 120;
  cfg.dim = 16;
  cfg.hidden_dim = 16;
  NetGanGenerator gen(cfg);
  Rng rng(5);
  ASSERT_TRUE(gen.Fit(data.graph, rng).ok());

  RandomWalker walker(data.graph);
  std::vector<Walk> held_out = walker.SampleUniformWalks(40, 8, rng);
  double before = MeanWalkNll(*gen.model(), held_out);
  // Three more rounds of training on fresh corpora.
  for (int round = 0; round < 3; ++round) {
    std::vector<Walk> corpus = walker.SampleUniformWalks(120, 8, rng);
    gen.TrainOnWalks(corpus, rng);
  }
  double after = MeanWalkNll(*gen.model(), held_out);
  EXPECT_LT(after, before);
}

TEST(WalkLMGeneratorTest, GeneratedEdgesConcentrateOnRealOnes) {
  // A trained walk model should place generated edges on real transitions
  // far more often than a uniform random generator would (which would get
  // ~density = m / C(n,2) = 17% right).
  LabeledGraph data = SmallGraph(6);
  NetGanConfig cfg;
  cfg.train = QuickBudget();
  cfg.train.num_walks = 300;
  cfg.train.epochs = 4;
  NetGanGenerator gen(cfg);
  Rng rng(6);
  ASSERT_TRUE(gen.Fit(data.graph, rng).ok());
  auto out = gen.Generate(rng);
  ASSERT_TRUE(out.ok());
  uint64_t overlap = 0;
  for (const Edge& e : out->ToEdgeList()) {
    if (data.graph.HasEdge(e.u, e.v)) ++overlap;
  }
  double precision =
      static_cast<double>(overlap) / static_cast<double>(out->num_edges());
  EXPECT_GT(precision, 0.25);
}

TEST(MeanWalkNllTest, EmptyCorpusIsZero) {
  LabeledGraph data = SmallGraph(7);
  NetGanConfig cfg;
  cfg.train = QuickBudget();
  NetGanGenerator gen(cfg);
  Rng rng(7);
  ASSERT_TRUE(gen.Fit(data.graph, rng).ok());
  EXPECT_EQ(MeanWalkNll(*gen.model(), {}), 0.0);
}

}  // namespace
}  // namespace fairgen
