#include "generators/generator.h"

#include <gtest/gtest.h>

namespace fairgen {
namespace {

TEST(EdgeScoreAccumulatorTest, CountsWalkTransitions) {
  EdgeScoreAccumulator acc(5);
  acc.AddWalk({0, 1, 2, 1});
  // Transitions: 0-1, 1-2, 2-1 => edge {1,2} counted twice.
  EXPECT_EQ(acc.num_scored_edges(), 2u);
  EXPECT_NEAR(acc.total_score(), 3.0, 1e-12);
}

TEST(EdgeScoreAccumulatorTest, IgnoresSelfTransitions) {
  EdgeScoreAccumulator acc(3);
  acc.AddWalk({0, 0, 0, 1});
  EXPECT_EQ(acc.num_scored_edges(), 1u);
  EXPECT_NEAR(acc.total_score(), 1.0, 1e-12);
}

TEST(EdgeScoreAccumulatorTest, OrientationNormalized) {
  EdgeScoreAccumulator acc(4);
  acc.AddEdge(2, 1);
  acc.AddEdge(1, 2);
  EXPECT_EQ(acc.num_scored_edges(), 1u);
  auto scored = acc.ScoredEdges();
  ASSERT_EQ(scored.size(), 1u);
  EXPECT_EQ(scored[0].first.u, 1u);
  EXPECT_EQ(scored[0].first.v, 2u);
  EXPECT_NEAR(scored[0].second, 2.0, 1e-12);
}

TEST(EdgeScoreAccumulatorTest, SelfEdgeIgnored) {
  EdgeScoreAccumulator acc(3);
  acc.AddEdge(1, 1);
  EXPECT_EQ(acc.num_scored_edges(), 0u);
}

TEST(EdgeScoreAccumulatorTest, BuildTopEdgesKeepsHighestScores) {
  EdgeScoreAccumulator acc(5);
  acc.AddEdge(0, 1, 10.0);
  acc.AddEdge(1, 2, 5.0);
  acc.AddEdge(2, 3, 1.0);
  auto g = acc.BuildTopEdges(2);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_TRUE(g->HasEdge(1, 2));
  EXPECT_FALSE(g->HasEdge(2, 3));
}

TEST(EdgeScoreAccumulatorTest, BuildWithFewerCandidatesThanTarget) {
  EdgeScoreAccumulator acc(4);
  acc.AddEdge(0, 1);
  auto g = acc.BuildTopEdges(10);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
}

TEST(EdgeScoreAccumulatorTest, TieBreakIsDeterministic) {
  EdgeScoreAccumulator a(5);
  EdgeScoreAccumulator b(5);
  for (auto* acc : {&a, &b}) {
    acc->AddEdge(3, 4, 1.0);
    acc->AddEdge(0, 1, 1.0);
    acc->AddEdge(1, 2, 1.0);
  }
  auto ga = a.BuildTopEdges(2);
  auto gb = b.BuildTopEdges(2);
  ASSERT_TRUE(ga.ok());
  ASSERT_TRUE(gb.ok());
  EXPECT_EQ(ga->ToEdgeList(), gb->ToEdgeList());
  // Lowest edge key wins ties.
  EXPECT_TRUE(ga->HasEdge(0, 1));
  EXPECT_TRUE(ga->HasEdge(1, 2));
}

TEST(EdgeScoreAccumulatorDeathTest, OutOfRangeNode) {
  EdgeScoreAccumulator acc(3);
  EXPECT_DEATH(acc.AddEdge(0, 5), "");
}

}  // namespace
}  // namespace fairgen
