#include "generators/ba.h"

#include <gtest/gtest.h>

#include "generators/er.h"
#include "graph/components.h"
#include "stats/metrics.h"

namespace fairgen {
namespace {

TEST(SampleBarabasiAlbertTest, BasicShape) {
  Rng rng(1);
  auto g = SampleBarabasiAlbert(200, 3, 0, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 200u);
  EXPECT_GT(g->num_edges(), 400u);
}

TEST(SampleBarabasiAlbertTest, IsConnected) {
  Rng rng(2);
  auto g = SampleBarabasiAlbert(300, 2, 0, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(LargestComponentSize(*g), 300u);
}

TEST(SampleBarabasiAlbertTest, HeavyTailedDegrees) {
  Rng rng(3);
  auto ba = SampleBarabasiAlbert(1000, 2, 0, rng);
  ASSERT_TRUE(ba.ok());
  auto er = SampleErdosRenyi(1000, ba->num_edges(), rng);
  ASSERT_TRUE(er.ok());
  // Preferential attachment produces far higher degree inequality and a
  // larger max degree than a same-size ER graph.
  EXPECT_GT(GiniCoefficient(*ba), GiniCoefficient(*er) + 0.1);
  EXPECT_GT(ba->MaxDegree(), 2 * er->MaxDegree());
}

TEST(SampleBarabasiAlbertTest, TargetEdgeBudgetReached) {
  Rng rng(4);
  auto g = SampleBarabasiAlbert(150, 2, 900, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(static_cast<double>(g->num_edges()), 900.0, 20.0);
}

TEST(SampleBarabasiAlbertTest, InvalidArgsRejected) {
  Rng rng(5);
  EXPECT_FALSE(SampleBarabasiAlbert(1, 2, 0, rng).ok());
  EXPECT_FALSE(SampleBarabasiAlbert(10, 0, 0, rng).ok());
}

TEST(SampleBarabasiAlbertTest, EdgesPerNodeClampedToFeasible) {
  Rng rng(6);
  auto g = SampleBarabasiAlbert(5, 100, 0, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_LE(g->num_edges(), 10u);
}

TEST(BarabasiAlbertGeneratorTest, MatchesEdgeBudgetApproximately) {
  Rng rng(7);
  auto input = SampleErdosRenyi(120, 600, rng);
  ASSERT_TRUE(input.ok());
  BarabasiAlbertGenerator gen;
  ASSERT_TRUE(gen.Fit(*input, rng).ok());
  EXPECT_EQ(gen.name(), "BA");
  auto out = gen.Generate(rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_nodes(), 120u);
  EXPECT_NEAR(static_cast<double>(out->num_edges()), 600.0, 30.0);
}

TEST(BarabasiAlbertGeneratorTest, GenerateBeforeFitFails) {
  BarabasiAlbertGenerator gen;
  Rng rng(8);
  EXPECT_TRUE(gen.Generate(rng).status().IsFailedPrecondition());
}

}  // namespace
}  // namespace fairgen
