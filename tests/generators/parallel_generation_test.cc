// Tests for the accumulator merge and the multi-threaded generation path.

#include <atomic>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "generators/netgan.h"

namespace fairgen {
namespace {

TEST(AccumulatorMergeTest, SumsScores) {
  EdgeScoreAccumulator a(4);
  a.AddEdge(0, 1, 2.0);
  a.AddEdge(1, 2, 1.0);
  EdgeScoreAccumulator b(4);
  b.AddEdge(0, 1, 3.0);
  b.AddEdge(2, 3, 5.0);
  a.Merge(b);
  EXPECT_EQ(a.num_scored_edges(), 3u);
  EXPECT_NEAR(a.total_score(), 11.0, 1e-12);
  for (const auto& [edge, score] : a.ScoredEdges()) {
    if (edge.u == 0 && edge.v == 1) {
      EXPECT_NEAR(score, 5.0, 1e-12);
    }
    if (edge.u == 2 && edge.v == 3) {
      EXPECT_NEAR(score, 5.0, 1e-12);
    }
  }
}

TEST(AccumulatorMergeTest, MergeEmptyIsNoOp) {
  EdgeScoreAccumulator a(3);
  a.AddEdge(0, 1);
  EdgeScoreAccumulator b(3);
  a.Merge(b);
  EXPECT_EQ(a.num_scored_edges(), 1u);
  EXPECT_NEAR(a.total_score(), 1.0, 1e-12);
}

TEST(AccumulatorMergeDeathTest, NodeCountMismatch) {
  EdgeScoreAccumulator a(3);
  EdgeScoreAccumulator b(4);
  EXPECT_DEATH(a.Merge(b), "");
}

TEST(AccumulateWalkScoresTest, SingleNodeWalksStillTerminate) {
  // Regression: walks of length 1 contribute 0 transitions, so the old
  // `transitions += walk.size() - 1` accounting never advanced and the
  // sampling loop spun forever. The accumulator must guarantee forward
  // progress even when every walk is degenerate.
  for (uint32_t threads : {1u, 2u, 4u}) {
    std::atomic<size_t> walks_sampled{0};
    Rng rng(5);
    EdgeScoreAccumulator acc = AccumulateWalkScores(
        /*num_nodes=*/8, /*target_transitions=*/1000, threads, rng,
        [&](Rng& walk_rng) {
          ++walks_sampled;
          return Walk{static_cast<NodeId>(walk_rng.NextU32() % 8)};
        });
    EXPECT_EQ(acc.num_scored_edges(), 0u);
    EXPECT_GT(walks_sampled.load(), 0u);
    // Each degenerate walk is charged one unit of budget, so the loop
    // samples at most `target` walks instead of spinning.
    EXPECT_LE(walks_sampled.load(), 1000u);
  }
}

TEST(AccumulateWalkScoresTest, BudgetIsHonoredExactlyAcrossThreadCounts) {
  // Regression: the old threaded path gave every worker
  // ceil(target / threads) transitions, overshooting the budget by up to
  // (threads - 1) walks' worth. With single-transition walks the total
  // score now equals the requested budget exactly, for any thread count
  // and for targets not divisible by the chunk count.
  for (uint64_t target : {1ull, 63ull, 64ull, 1001ull, 4096ull}) {
    for (uint32_t threads : {1u, 2u, 4u}) {
      Rng rng(9);
      EdgeScoreAccumulator acc = AccumulateWalkScores(
          /*num_nodes=*/16, target, threads, rng, [](Rng& walk_rng) {
            NodeId u = static_cast<NodeId>(walk_rng.NextU32() % 16);
            NodeId v = static_cast<NodeId>((u + 1 +
                                            walk_rng.NextU32() % 15) %
                                           16);
            return Walk{u, v};
          });
      EXPECT_NEAR(acc.total_score(), static_cast<double>(target), 1e-9)
          << "target " << target << ", " << threads << " threads";
    }
  }
}

TEST(AccumulateWalkScoresTest, ZeroBudgetSamplesNothing) {
  std::atomic<size_t> walks_sampled{0};
  Rng rng(3);
  EdgeScoreAccumulator acc = AccumulateWalkScores(
      /*num_nodes=*/4, /*target_transitions=*/0, 4, rng, [&](Rng&) {
        ++walks_sampled;
        return Walk{0, 1};
      });
  EXPECT_EQ(walks_sampled.load(), 0u);
  EXPECT_EQ(acc.num_scored_edges(), 0u);
}

TEST(ParallelGenerationTest, MultiThreadedGenerateIsValid) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 60;
  cfg.num_edges = 300;
  Rng rng(1);
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());

  NetGanConfig netgan;
  netgan.train.num_walks = 60;
  netgan.train.epochs = 1;
  netgan.train.gen_transition_multiplier = 4.0;
  netgan.train.num_threads = 4;
  netgan.dim = 12;
  netgan.hidden_dim = 12;
  NetGanGenerator gen(netgan);
  ASSERT_TRUE(gen.Fit(data->graph, rng).ok());
  auto out = gen.Generate(rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_nodes(), 60u);
  EXPECT_GT(out->num_edges(), 100u);
  EXPECT_LE(out->num_edges(), 300u);
}

TEST(ParallelGenerationTest, ThreadCountDoesNotBiasEdgeMass) {
  // Sequential and 4-thread generation should accumulate a similar number
  // of scored candidate edges (same transition budget).
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 50;
  cfg.num_edges = 250;
  Rng rng(2);
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());

  auto run = [&](uint32_t threads) {
    NetGanConfig netgan;
    netgan.train.num_walks = 40;
    netgan.train.epochs = 1;
    netgan.train.gen_transition_multiplier = 6.0;
    netgan.train.num_threads = threads;
    netgan.dim = 12;
    netgan.hidden_dim = 12;
    NetGanGenerator gen(netgan);
    Rng fit_rng(7);
    EXPECT_TRUE(gen.Fit(data->graph, fit_rng).ok());
    Rng gen_rng(8);
    auto scored = gen.ScoreEdges(gen_rng);
    EXPECT_TRUE(scored.ok());
    double total = 0.0;
    for (const auto& [edge, score] : *scored) total += score;
    return total;
  };
  double seq = run(1);
  double par = run(4);
  EXPECT_NEAR(par, seq, 0.05 * seq + 40.0);
}

}  // namespace
}  // namespace fairgen
