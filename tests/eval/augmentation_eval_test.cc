#include "eval/augmentation_eval.h"

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace fairgen {
namespace {

LabeledGraph SmallLabeled(uint64_t seed) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 90;
  cfg.num_edges = 550;
  cfg.num_classes = 3;
  cfg.protected_size = 12;
  cfg.intra_class_affinity = 9.0;
  Rng rng(seed);
  auto data = GenerateSynthetic(cfg, rng);
  EXPECT_TRUE(data.ok());
  LabeledGraph out = data.MoveValueUnsafe();
  out.name = "MINI";
  return out;
}

AugmentationConfig QuickAug() {
  AugmentationConfig cfg;
  cfg.folds = 4;
  cfg.node2vec.dim = 16;
  cfg.node2vec.walks_per_node = 6;
  cfg.node2vec.walk_length = 10;
  cfg.node2vec.epochs = 2;
  cfg.classifier.epochs = 250;
  cfg.classifier.lr = 0.3f;
  return cfg;
}

TEST(ClassifyWithEmbeddingTest, ReasonableAccuracyOnCommunities) {
  LabeledGraph data = SmallLabeled(1);
  auto result =
      ClassifyWithEmbedding(data.graph, data, QuickAug(), 1, "base");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->model, "base");
  // Planted communities are easy: well above the 1/3 chance level.
  EXPECT_GT(result->mean_accuracy, 0.55);
  EXPECT_LE(result->mean_accuracy, 1.0);
  EXPECT_GE(result->std_accuracy, 0.0);
}

TEST(ClassifyWithEmbeddingTest, RejectsUnlabeledData) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 40;
  cfg.num_edges = 120;
  Rng rng(2);
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  auto result =
      ClassifyWithEmbedding(data->graph, *data, QuickAug(), 2, "x");
  EXPECT_FALSE(result.ok());
}

TEST(AugmentGraphTest, AddsOnlyNewEdgesWithinBudget) {
  LabeledGraph data = SmallLabeled(3);
  Rng rng(3);
  // "Generated" graph: the original plus a block of fresh edges.
  GraphBuilder builder(data.graph.num_nodes());
  ASSERT_TRUE(builder.AddEdges(data.graph.ToEdgeList()).ok());
  uint32_t added = 0;
  for (NodeId v = 0; added < 60 && v + 7 < data.graph.num_nodes(); ++v) {
    if (!data.graph.HasEdge(v, v + 7)) {
      ASSERT_TRUE(builder.AddEdge(v, v + 7).ok());
      ++added;
    }
  }
  auto generated = builder.Build();
  ASSERT_TRUE(generated.ok());

  auto augmented = AugmentGraph(data.graph, *generated, 0.05, rng);
  ASSERT_TRUE(augmented.ok());
  uint64_t budget = static_cast<uint64_t>(0.05 * data.graph.num_edges());
  EXPECT_EQ(augmented->num_edges(), data.graph.num_edges() + budget);
  // Original edges all retained.
  for (const Edge& e : data.graph.ToEdgeList()) {
    EXPECT_TRUE(augmented->HasEdge(e.u, e.v));
  }
}

TEST(AugmentGraphTest, NoNewEdgesMeansUnchanged) {
  LabeledGraph data = SmallLabeled(4);
  Rng rng(4);
  auto augmented = AugmentGraph(data.graph, data.graph, 0.05, rng);
  ASSERT_TRUE(augmented.ok());
  EXPECT_EQ(augmented->num_edges(), data.graph.num_edges());
}

TEST(AugmentGraphTest, MismatchedNodesRejected) {
  LabeledGraph data = SmallLabeled(5);
  Rng rng(5);
  EXPECT_FALSE(
      AugmentGraph(data.graph, Graph::Empty(3), 0.05, rng).ok());
}

TEST(EvaluateAugmentationTest, CheapZooEndToEnd) {
  LabeledGraph data = SmallLabeled(6);
  ZooConfig zoo;
  zoo.labels_per_class = 4;
  zoo.include_deep = false;
  zoo.include_ablations = false;
  zoo.fairgen.num_walks = 40;
  zoo.fairgen.self_paced_cycles = 2;
  zoo.fairgen.generator_epochs = 1;
  zoo.fairgen.embedding_dim = 16;
  zoo.fairgen.ffn_dim = 24;
  zoo.fairgen.gen_transition_multiplier = 2.0;
  auto results = EvaluateAugmentation(data, zoo, QuickAug(), 6);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  // NoAugmentation + FairGen + ER + BA.
  ASSERT_EQ(results->size(), 4u);
  EXPECT_EQ((*results)[0].model, "NoAugmentation");
  for (const AugmentationResult& r : *results) {
    EXPECT_GE(r.mean_accuracy, 0.0);
    EXPECT_LE(r.mean_accuracy, 1.0);
  }
}

}  // namespace
}  // namespace fairgen
