#include "eval/disparity_probe.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fairgen {
namespace {

LabeledGraph DisparityData(uint64_t seed) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 120;
  cfg.num_edges = 800;
  cfg.num_classes = 3;
  cfg.protected_size = 18;
  cfg.protected_cohesion = 6.0;
  Rng rng(seed);
  auto data = GenerateSynthetic(cfg, rng);
  EXPECT_TRUE(data.ok());
  LabeledGraph out = data.MoveValueUnsafe();
  out.name = "PROBE";
  return out;
}

DisparityProbeConfig QuickProbe() {
  DisparityProbeConfig cfg;
  cfg.checkpoints = 3;
  cfg.eval_walks = 40;
  cfg.netgan.train.num_walks = 80;
  cfg.netgan.train.walk_length = 8;
  cfg.netgan.dim = 16;
  cfg.netgan.hidden_dim = 16;
  return cfg;
}

TEST(DisparityProbeTest, ProducesRequestedCheckpoints) {
  LabeledGraph data = DisparityData(1);
  auto points = ProbeDisparity(data, QuickProbe(), 1);
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  ASSERT_EQ(points->size(), 3u);
  uint32_t prev_iter = 0;
  for (const DisparityPoint& p : *points) {
    EXPECT_GT(p.iteration, prev_iter);
    prev_iter = p.iteration;
    EXPECT_TRUE(std::isfinite(p.overall_nll));
    EXPECT_TRUE(std::isfinite(p.protected_nll));
    EXPECT_GT(p.overall_nll, 0.0);
    EXPECT_GT(p.protected_nll, 0.0);
  }
}

TEST(DisparityProbeTest, OverallLossImprovesWithTraining) {
  LabeledGraph data = DisparityData(2);
  DisparityProbeConfig cfg = QuickProbe();
  cfg.checkpoints = 4;
  cfg.netgan.train.num_walks = 120;
  auto points = ProbeDisparity(data, cfg, 2);
  ASSERT_TRUE(points.ok());
  EXPECT_LT(points->back().overall_nll, points->front().overall_nll);
}

TEST(DisparityProbeTest, DisparityGapEmergesOrPersists) {
  // The Fig. 1 phenomenon: by the final checkpoint the protected loss sits
  // above the overall loss (the model under-serves the minority).
  LabeledGraph data = DisparityData(3);
  DisparityProbeConfig cfg = QuickProbe();
  cfg.checkpoints = 4;
  cfg.netgan.train.num_walks = 150;
  auto points = ProbeDisparity(data, cfg, 3);
  ASSERT_TRUE(points.ok());
  const DisparityPoint& last = points->back();
  EXPECT_GT(last.protected_nll, last.overall_nll);
}

TEST(DisparityProbeTest, RequiresProtectedGroup) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 50;
  cfg.num_edges = 150;
  Rng rng(4);
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  auto points = ProbeDisparity(*data, QuickProbe(), 4);
  EXPECT_FALSE(points.ok());
  EXPECT_TRUE(points.status().IsInvalidArgument());
}

}  // namespace
}  // namespace fairgen
