#include "eval/discrepancy_eval.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fairgen {
namespace {

ZooConfig QuickZoo() {
  ZooConfig cfg;
  cfg.labels_per_class = 4;
  cfg.walk_budget.num_walks = 50;
  cfg.walk_budget.epochs = 1;
  cfg.walk_budget.gen_transition_multiplier = 2.5;
  cfg.fairgen.num_walks = 50;
  cfg.fairgen.self_paced_cycles = 2;
  cfg.fairgen.generator_epochs = 1;
  cfg.fairgen.embedding_dim = 16;
  cfg.fairgen.ffn_dim = 24;
  cfg.fairgen.gen_transition_multiplier = 2.5;
  cfg.gae.epochs = 20;
  return cfg;
}

LabeledGraph SmallBlog(uint64_t seed) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 80;
  cfg.num_edges = 450;
  cfg.num_classes = 3;
  cfg.protected_size = 12;
  Rng rng(seed);
  auto data = GenerateSynthetic(cfg, rng);
  EXPECT_TRUE(data.ok());
  LabeledGraph out = data.MoveValueUnsafe();
  out.name = "MINIBLOG";
  return out;
}

TEST(ModelZooTest, FullZooHasNineModels) {
  LabeledGraph data = SmallBlog(1);
  auto zoo = MakeModelZoo(data, QuickZoo(), 1);
  ASSERT_TRUE(zoo.ok());
  ASSERT_EQ(zoo->size(), 9u);
  EXPECT_EQ((*zoo)[0]->name(), "FairGen");
  EXPECT_EQ((*zoo)[1]->name(), "FairGen-R");
  EXPECT_EQ((*zoo)[2]->name(), "FairGen-w/o-SPL");
  EXPECT_EQ((*zoo)[3]->name(), "FairGen-w/o-Parity");
  EXPECT_EQ((*zoo)[4]->name(), "ER");
  EXPECT_EQ((*zoo)[5]->name(), "BA");
  EXPECT_EQ((*zoo)[6]->name(), "GAE");
  EXPECT_EQ((*zoo)[7]->name(), "NetGAN");
  EXPECT_EQ((*zoo)[8]->name(), "TagGen");
}

TEST(ModelZooTest, FlagsShrinkZoo) {
  LabeledGraph data = SmallBlog(2);
  ZooConfig cfg = QuickZoo();
  cfg.include_deep = false;
  cfg.include_ablations = false;
  auto zoo = MakeModelZoo(data, cfg, 2);
  ASSERT_TRUE(zoo.ok());
  EXPECT_EQ(zoo->size(), 3u);  // FairGen + ER + BA
}

TEST(EvaluateGeneratorTest, ProducesFiniteDiscrepancies) {
  LabeledGraph data = SmallBlog(3);
  ErdosRenyiGenerator er;
  auto result = EvaluateGenerator(er, data, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->model, "ER");
  EXPECT_TRUE(result->has_protected);
  for (double d : result->overall) {
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_GE(d, 0.0);
  }
  for (double d : result->protected_group) {
    EXPECT_TRUE(std::isfinite(d));
  }
  EXPECT_GT(result->generated_edges, 0u);
  EXPECT_GE(result->fit_seconds, 0.0);
}

TEST(EvaluateGeneratorTest, UnlabeledDatasetSkipsProtected) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 60;
  cfg.num_edges = 200;
  Rng rng(4);
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  BarabasiAlbertGenerator ba;
  auto result = EvaluateGenerator(ba, *data, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->has_protected);
}

TEST(EvaluateGeneratorsTest, RunsCheapZooEndToEnd) {
  LabeledGraph data = SmallBlog(5);
  ZooConfig cfg = QuickZoo();
  cfg.include_deep = false;  // keep this suite fast
  auto results = EvaluateGenerators(data, cfg, 5);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 6u);
  for (const GeneratorEvalResult& r : *results) {
    EXPECT_TRUE(r.has_protected);
    EXPECT_GT(r.generated_edges, 0u);
  }
}

TEST(EvaluateGeneratorsTest, FairGenBeatsERonProtectedDiscrepancy) {
  // The headline Fig. 5 claim at miniature scale: the fairness-aware model
  // preserves the protected subgraph better than structure-agnostic ER.
  LabeledGraph data = SmallBlog(6);
  ZooConfig cfg = QuickZoo();
  cfg.fairgen.self_paced_cycles = 3;
  cfg.include_deep = false;
  cfg.include_ablations = false;
  auto results = EvaluateGenerators(data, cfg, 6);
  ASSERT_TRUE(results.ok());
  const GeneratorEvalResult* fairgen = nullptr;
  const GeneratorEvalResult* er = nullptr;
  for (const auto& r : *results) {
    if (r.model == "FairGen") fairgen = &r;
    if (r.model == "ER") er = &r;
  }
  ASSERT_NE(fairgen, nullptr);
  ASSERT_NE(er, nullptr);
  EXPECT_LT(MeanDiscrepancy(fairgen->protected_group),
            MeanDiscrepancy(er->protected_group));
}

}  // namespace
}  // namespace fairgen
