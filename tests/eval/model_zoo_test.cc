// Dedicated tests for the zoo factory's supervision wiring.

#include <gtest/gtest.h>

#include "eval/model_zoo.h"

namespace fairgen {
namespace {

ZooConfig TinyZoo() {
  ZooConfig cfg;
  cfg.labels_per_class = 3;
  cfg.fairgen.num_walks = 30;
  cfg.fairgen.self_paced_cycles = 1;
  cfg.fairgen.generator_epochs = 1;
  cfg.fairgen.embedding_dim = 16;
  cfg.fairgen.ffn_dim = 24;
  return cfg;
}

LabeledGraph Labeled(uint64_t seed) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 60;
  cfg.num_edges = 280;
  cfg.num_classes = 3;
  cfg.protected_size = 10;
  Rng rng(seed);
  auto data = GenerateSynthetic(cfg, rng);
  EXPECT_TRUE(data.ok());
  return data.MoveValueUnsafe();
}

TEST(MakeFairGenTest, WiresFewShotSupervision) {
  LabeledGraph data = Labeled(1);
  auto trainer = MakeFairGen(data, TinyZoo(), FairGenVariant::kFull, 1);
  ASSERT_TRUE(trainer.ok());
  Rng rng(1);
  ASSERT_TRUE((*trainer)->Fit(data.graph, rng).ok());
  // The trainer saw labels: its current label assignment contains at
  // least labels_per_class * C ground-truth entries.
  uint32_t labeled = 0;
  for (int32_t y : (*trainer)->current_labels()) {
    if (y != kUnlabeled) ++labeled;
  }
  EXPECT_GE(labeled, 9u);
}

TEST(MakeFairGenTest, VariantIsApplied) {
  LabeledGraph data = Labeled(2);
  auto trainer =
      MakeFairGen(data, TinyZoo(), FairGenVariant::kNoParity, 2);
  ASSERT_TRUE(trainer.ok());
  EXPECT_EQ((*trainer)->name(), "FairGen-w/o-Parity");
  EXPECT_EQ((*trainer)->config().variant, FairGenVariant::kNoParity);
}

TEST(MakeFairGenTest, ProtectedOnlySupervision) {
  // A dataset with a protected group but no labels (not in Table I, but a
  // legal input): the factory must wire the protected set for the fair
  // assembler even without class supervision.
  LabeledGraph data = Labeled(3);
  data.labels.assign(data.graph.num_nodes(), kUnlabeled);
  data.num_classes = 0;
  auto trainer = MakeFairGen(data, TinyZoo(), FairGenVariant::kFull, 3);
  ASSERT_TRUE(trainer.ok());
  Rng rng(3);
  ASSERT_TRUE((*trainer)->Fit(data.graph, rng).ok());
  auto generated = (*trainer)->Generate(rng);
  ASSERT_TRUE(generated.ok());
  const AssemblyReport& report = (*trainer)->last_assembly_report();
  EXPECT_GT(report.protected_volume_target, 0u);
}

TEST(MakeFairGenTest, UnsupervisedDatasetWorks) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 50;
  cfg.num_edges = 200;
  Rng rng(4);
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  auto trainer = MakeFairGen(*data, TinyZoo(), FairGenVariant::kFull, 4);
  ASSERT_TRUE(trainer.ok());
  ASSERT_TRUE((*trainer)->Fit(data->graph, rng).ok());
}

TEST(MakeFairGenTest, SupervisionSeedIsDeterministic) {
  LabeledGraph data = Labeled(5);
  auto a = MakeFairGen(data, TinyZoo(), FairGenVariant::kFull, 42);
  auto b = MakeFairGen(data, TinyZoo(), FairGenVariant::kFull, 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Rng rng_a(9);
  Rng rng_b(9);
  ASSERT_TRUE((*a)->Fit(data.graph, rng_a).ok());
  ASSERT_TRUE((*b)->Fit(data.graph, rng_b).ok());
  EXPECT_EQ((*a)->current_labels(), (*b)->current_labels());
}

}  // namespace
}  // namespace fairgen
