#include "core/trainer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "graph/subgraph.h"

namespace fairgen {
namespace {

FairGenConfig QuickConfig() {
  FairGenConfig cfg;
  cfg.num_walks = 60;
  cfg.self_paced_cycles = 2;
  cfg.generator_epochs = 1;
  cfg.generator_batch = 8;
  cfg.batch_size = 32;
  cfg.embedding_dim = 16;
  cfg.ffn_dim = 24;
  cfg.gen_transition_multiplier = 3.0;
  return cfg;
}

LabeledGraph MakeData(uint64_t seed) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 90;
  cfg.num_edges = 500;
  cfg.num_classes = 3;
  cfg.protected_size = 15;
  Rng rng(seed);
  auto data = GenerateSynthetic(cfg, rng);
  EXPECT_TRUE(data.ok());
  return data.MoveValueUnsafe();
}

std::vector<int32_t> FewShot(const LabeledGraph& data, uint64_t seed) {
  Rng rng(seed);
  return FewShotLabels(data, 4, rng);
}

TEST(FairGenTrainerTest, SupervisionValidation) {
  FairGenTrainer trainer(QuickConfig());
  EXPECT_FALSE(
      trainer.SetSupervision({0, 1, -5}, {}, 2).ok());  // negative label
  EXPECT_FALSE(trainer.SetSupervision({0, 3}, {}, 2).ok());  // label >= C
  EXPECT_TRUE(trainer.SetSupervision({0, 1, kUnlabeled}, {0}, 2).ok());
}

TEST(FairGenTrainerTest, NameFollowsVariant) {
  FairGenConfig cfg = QuickConfig();
  FairGenTrainer full(cfg);
  EXPECT_EQ(full.name(), "FairGen");
  cfg.variant = FairGenVariant::kNoParity;
  FairGenTrainer ablation(cfg);
  EXPECT_EQ(ablation.name(), "FairGen-w/o-Parity");
}

TEST(FairGenTrainerTest, FitRejectsEmptyGraph) {
  FairGenTrainer trainer(QuickConfig());
  Rng rng(1);
  EXPECT_TRUE(trainer.Fit(Graph::Empty(10), rng).IsInvalidArgument());
}

TEST(FairGenTrainerTest, FitRejectsMismatchedSupervision) {
  LabeledGraph data = MakeData(2);
  FairGenTrainer trainer(QuickConfig());
  ASSERT_TRUE(trainer.SetSupervision({0, 1}, {}, 2).ok());  // 2 nodes
  Rng rng(2);
  EXPECT_TRUE(trainer.Fit(data.graph, rng).IsInvalidArgument());
}

TEST(FairGenTrainerTest, GenerateBeforeFitFails) {
  FairGenTrainer trainer(QuickConfig());
  Rng rng(3);
  EXPECT_TRUE(trainer.Generate(rng).status().IsFailedPrecondition());
}

TEST(FairGenTrainerTest, EndToEndWithSupervision) {
  LabeledGraph data = MakeData(4);
  FairGenTrainer trainer(QuickConfig());
  ASSERT_TRUE(trainer
                  .SetSupervision(FewShot(data, 4), data.protected_set,
                                  data.num_classes)
                  .ok());
  Rng rng(4);
  ASSERT_TRUE(trainer.Fit(data.graph, rng).ok());

  // Loss history: one entry per self-paced cycle, all finite.
  ASSERT_EQ(trainer.loss_history().size(), 2u);
  for (const FairGenLosses& l : trainer.loss_history()) {
    EXPECT_TRUE(std::isfinite(l.total()));
    EXPECT_GT(l.j_g, 0.0);
  }

  auto generated = trainer.Generate(rng);
  ASSERT_TRUE(generated.ok());
  EXPECT_EQ(generated->num_nodes(), data.graph.num_nodes());
  EXPECT_EQ(generated->num_edges(), data.graph.num_edges());

  const AssemblyReport& report = trainer.last_assembly_report();
  EXPECT_EQ(report.target_edges, data.graph.num_edges());
  EXPECT_GT(report.protected_volume_target, 0u);
}

TEST(FairGenTrainerTest, SelfPacedLabelsGrow) {
  LabeledGraph data = MakeData(5);
  FairGenConfig cfg = QuickConfig();
  cfg.self_paced_cycles = 3;
  cfg.lambda = 1.0f;
  cfg.lambda_growth = 2.0f;
  FairGenTrainer trainer(cfg);
  std::vector<int32_t> few = FewShot(data, 5);
  uint32_t initial_labeled = 0;
  for (int32_t y : few) {
    if (y != kUnlabeled) ++initial_labeled;
  }
  ASSERT_TRUE(
      trainer.SetSupervision(few, data.protected_set, data.num_classes)
          .ok());
  Rng rng(5);
  ASSERT_TRUE(trainer.Fit(data.graph, rng).ok());
  uint32_t total_labeled = 0;
  for (int32_t y : trainer.current_labels()) {
    if (y != kUnlabeled) ++total_labeled;
  }
  // Pseudo labels must extend (never shrink) the labeled set, and
  // ground-truth labels must be preserved verbatim.
  EXPECT_GE(total_labeled, initial_labeled);
  EXPECT_EQ(total_labeled - initial_labeled, trainer.num_pseudo_labeled());
  for (NodeId v = 0; v < few.size(); ++v) {
    if (few[v] != kUnlabeled) {
      EXPECT_EQ(trainer.current_labels()[v], few[v]);
    }
  }
}

TEST(FairGenTrainerTest, NoSelfPacedVariantKeepsLabelsFixed) {
  LabeledGraph data = MakeData(6);
  FairGenConfig cfg = QuickConfig();
  cfg.variant = FairGenVariant::kNoSelfPaced;
  FairGenTrainer trainer(cfg);
  std::vector<int32_t> few = FewShot(data, 6);
  ASSERT_TRUE(
      trainer.SetSupervision(few, data.protected_set, data.num_classes)
          .ok());
  Rng rng(6);
  ASSERT_TRUE(trainer.Fit(data.graph, rng).ok());
  EXPECT_EQ(trainer.num_pseudo_labeled(), 0u);
  EXPECT_EQ(trainer.current_labels(), few);
}

TEST(FairGenTrainerTest, NoParityVariantHasZeroJf) {
  LabeledGraph data = MakeData(7);
  FairGenConfig cfg = QuickConfig();
  cfg.variant = FairGenVariant::kNoParity;
  FairGenTrainer trainer(cfg);
  ASSERT_TRUE(trainer
                  .SetSupervision(FewShot(data, 7), data.protected_set,
                                  data.num_classes)
                  .ok());
  Rng rng(7);
  ASSERT_TRUE(trainer.Fit(data.graph, rng).ok());
  for (const FairGenLosses& l : trainer.loss_history()) {
    EXPECT_EQ(l.j_f, 0.0);
  }
}

TEST(FairGenTrainerTest, UnsupervisedModeDegradesGracefully) {
  // No labels at all (the paper's Email/FB/GNU/CA setting).
  LabeledGraph data = MakeData(8);
  FairGenTrainer trainer(QuickConfig());
  Rng rng(8);
  ASSERT_TRUE(trainer.Fit(data.graph, rng).ok());
  for (const FairGenLosses& l : trainer.loss_history()) {
    EXPECT_EQ(l.j_p, 0.0);
    EXPECT_EQ(l.j_f, 0.0);
  }
  auto generated = trainer.Generate(rng);
  ASSERT_TRUE(generated.ok());
  EXPECT_EQ(generated->num_edges(), data.graph.num_edges());
}

TEST(FairGenTrainerTest, GeneratedGraphCoversActiveNodes) {
  LabeledGraph data = MakeData(9);
  FairGenTrainer trainer(QuickConfig());
  ASSERT_TRUE(trainer
                  .SetSupervision(FewShot(data, 9), data.protected_set,
                                  data.num_classes)
                  .ok());
  Rng rng(9);
  ASSERT_TRUE(trainer.Fit(data.graph, rng).ok());
  auto generated = trainer.Generate(rng);
  ASSERT_TRUE(generated.ok());
  for (NodeId v = 0; v < data.graph.num_nodes(); ++v) {
    if (data.graph.Degree(v) > 0) {
      EXPECT_GE(generated->Degree(v), 1u);
    }
  }
}

}  // namespace
}  // namespace fairgen
