// Unit suite for the deterministic dependency-graph executor
// (core/pipeline). Covers the graph contract (topological order on
// diamond/fan shapes, cycle detection as a hard error, port validation),
// the streaming contract (bounded-queue backpressure, FIFO hand-off,
// broadcast ports, Feed/Drain), failure modes (stage errors, no-progress
// stalls), the wave-overlap property the trainer relies on, and the
// determinism pin: bitwise-identical pipeline outputs at 1, 2 and 4
// threads from per-stage SplitRngs streams.

#include "core/pipeline/pipeline.h"

#include <algorithm>
#include <any>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/events.h"
#include "rng/rng.h"

namespace fairgen {
namespace pipeline {
namespace {

using ::testing::Test;

size_t IndexOf(const std::vector<std::string>& order,
               const std::string& name) {
  auto it = std::find(order.begin(), order.end(), name);
  EXPECT_NE(it, order.end()) << name << " missing from execution order";
  return static_cast<size_t>(it - order.begin());
}

// Source stage pushing count consecutive ints on output 0.
StageFn IntSource(int count) {
  return [count](StageContext& ctx) -> Result<StepResult> {
    int next = static_cast<int>(ctx.invocation());
    ctx.Push(0, next);
    return next + 1 >= count ? StepResult::kDone : StepResult::kYield;
  };
}

// Transform stage: applies fn to each input item; kDone on exhaustion.
template <typename Fn>
StageFn IntMap(Fn fn) {
  return [fn](StageContext& ctx) -> Result<StepResult> {
    if (!ctx.Has(0)) return StepResult::kDone;  // finalize
    ctx.Push(0, fn(std::any_cast<int>(ctx.Pop(0))));
    return StepResult::kYield;
  };
}

// Consumer stage appending everything to *out.
StageFn IntCollect(std::vector<int>* out) {
  return [out](StageContext& ctx) -> Result<StepResult> {
    if (!ctx.Has(0)) return StepResult::kDone;
    out->push_back(std::any_cast<int>(ctx.Pop(0)));
    return StepResult::kYield;
  };
}

TEST(PipelineGraphTest, DiamondTopologicalOrderAndValues) {
  Pipeline pipe("test");
  std::vector<int> sums;
  ASSERT_TRUE(pipe.AddStage({"join",
                             trace::Category::kGeneral,
                             {"doubled", "shifted"},
                             {},
                             [&](StageContext& ctx) -> Result<StepResult> {
                               if (!ctx.Has(0) && !ctx.Has(1)) {
                                 return StepResult::kDone;
                               }
                               int sum = 0;
                               if (ctx.Has(0)) {
                                 sum += std::any_cast<int>(ctx.Pop(0));
                               }
                               if (ctx.Has(1)) {
                                 sum += std::any_cast<int>(ctx.Pop(1));
                               }
                               sums.push_back(sum);
                               return StepResult::kYield;
                             }})
                  .ok());
  ASSERT_TRUE(pipe.AddStage({"double",
                             trace::Category::kGeneral,
                             {"numbers"},
                             {"doubled"},
                             IntMap([](int v) { return 2 * v; })})
                  .ok());
  ASSERT_TRUE(pipe.AddStage({"shift",
                             trace::Category::kGeneral,
                             {"numbers2"},
                             {"shifted"},
                             IntMap([](int v) { return v + 10; })})
                  .ok());
  ASSERT_TRUE(pipe.AddStage({"source",
                             trace::Category::kGeneral,
                             {},
                             {"numbers", "numbers2"},
                             [](StageContext& ctx) -> Result<StepResult> {
                               int next = static_cast<int>(ctx.invocation());
                               ctx.Push(0, next);
                               ctx.Push(1, next);
                               return next >= 2 ? StepResult::kDone
                                                : StepResult::kYield;
                             }})
                  .ok());
  ASSERT_TRUE(pipe.Prepare().ok());

  // Flattened topo order: source strictly before both branches, both
  // branches strictly before the join — regardless of insertion order.
  const std::vector<std::string>& order = pipe.execution_order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_LT(IndexOf(order, "source"), IndexOf(order, "double"));
  EXPECT_LT(IndexOf(order, "source"), IndexOf(order, "shift"));
  EXPECT_LT(IndexOf(order, "double"), IndexOf(order, "join"));
  EXPECT_LT(IndexOf(order, "shift"), IndexOf(order, "join"));

  ASSERT_TRUE(pipe.Run({.num_threads = 2}).ok());
  EXPECT_EQ(sums, (std::vector<int>{10, 13, 16}));  // 2k + (k+10)

  // The two middle branches of the diamond started in the same wave:
  // that is the overlap the trainer uses for walk-vs-train.
  auto d = pipe.stage_stats("double");
  auto s = pipe.stage_stats("shift");
  ASSERT_TRUE(d.ok() && s.ok());
  EXPECT_EQ(d->first_wave, s->first_wave);
}

TEST(PipelineGraphTest, FanOutBroadcastDeliversToEveryConsumer) {
  Pipeline pipe("test");
  std::vector<int> left, right;
  ASSERT_TRUE(pipe.AddStage({"source", trace::Category::kGeneral, {},
                             {"fan"}, IntSource(4)})
                  .ok());
  ASSERT_TRUE(pipe.AddStage(
                      {"left", trace::Category::kGeneral, {"fan"}, {},
                       IntCollect(&left)})
                  .ok());
  ASSERT_TRUE(pipe.AddStage(
                      {"right", trace::Category::kGeneral, {"fan"}, {},
                       IntCollect(&right)})
                  .ok());
  ASSERT_TRUE(pipe.Run({.num_threads = 4}).ok());
  EXPECT_EQ(left, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(right, (std::vector<int>{0, 1, 2, 3}));
}

TEST(PipelineGraphTest, DependencyCycleIsHardError) {
  Pipeline pipe("test");
  auto echo = [](StageContext& ctx) -> Result<StepResult> {
    if (ctx.Has(0)) ctx.Push(0, ctx.Pop(0));
    return StepResult::kYield;
  };
  ASSERT_TRUE(pipe.AddStage({"a", trace::Category::kGeneral, {"x"}, {"y"},
                             echo})
                  .ok());
  ASSERT_TRUE(pipe.AddStage({"b", trace::Category::kGeneral, {"y"}, {"x"},
                             echo})
                  .ok());
  Status status = pipe.Prepare();
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_NE(status.message().find("cycle"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("'a'"), std::string::npos);
  EXPECT_NE(status.message().find("'b'"), std::string::npos);
}

TEST(PipelineGraphTest, PortValidationErrors) {
  {
    Pipeline pipe("test");
    ASSERT_TRUE(pipe.AddStage({"a", trace::Category::kGeneral, {},
                               {"out"}, IntSource(1)})
                    .ok());
    Status dup = pipe.AddStage(
        {"b", trace::Category::kGeneral, {}, {"out"}, IntSource(1)});
    EXPECT_TRUE(dup.IsInvalidArgument()) << dup.ToString();
  }
  {
    Pipeline pipe("test");
    ASSERT_TRUE(pipe.AddStage({"a", trace::Category::kGeneral, {},
                               {"out"}, IntSource(1)})
                    .ok());
    Status dup = pipe.AddStage(
        {"a", trace::Category::kGeneral, {}, {"other"}, IntSource(1)});
    EXPECT_TRUE(dup.IsInvalidArgument()) << dup.ToString();
  }
  {
    // A consumed port with neither a producer stage nor Feed values.
    Pipeline pipe("test");
    std::vector<int> sink;
    ASSERT_TRUE(pipe.AddStage({"c", trace::Category::kGeneral,
                               {"nowhere"}, {}, IntCollect(&sink)})
                    .ok());
    Status status = pipe.Prepare();
    EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  }
}

TEST(PipelineStreamTest, BackpressureBoundsQueueAndPreservesOrder) {
  Pipeline pipe("test");
  std::vector<int> got;
  constexpr int kItems = 100;
  ASSERT_TRUE(pipe.AddStage({"source", trace::Category::kGeneral, {},
                             {"stream"}, IntSource(kItems)})
                  .ok());
  ASSERT_TRUE(pipe.AddStage({"sink", trace::Category::kGeneral,
                             {"stream"}, {}, IntCollect(&got)})
                  .ok());
  ASSERT_TRUE(pipe.SetPortCapacity("stream", 3).ok());
  ASSERT_TRUE(pipe.Run({.num_threads = 2}).ok());

  std::vector<int> want(kItems);
  for (int i = 0; i < kItems; ++i) want[i] = i;
  EXPECT_EQ(got, want);

  auto stats = pipe.port_stats("stream");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->capacity, 3u);
  EXPECT_EQ(stats->pushed, static_cast<uint64_t>(kItems));
  EXPECT_EQ(stats->popped, static_cast<uint64_t>(kItems));
  EXPECT_LE(stats->max_queued, 3u);  // the bound held
  EXPECT_GE(stats->max_queued, 1u);
}

TEST(PipelineStreamTest, FeedAndDrainRoundTrip) {
  Pipeline pipe("test");
  ASSERT_TRUE(pipe.AddStage({"double", trace::Category::kGeneral, {"in"},
                             {"out"},
                             IntMap([](int v) { return 2 * v; })})
                  .ok());
  for (int v : {7, 8, 9}) {
    ASSERT_TRUE(pipe.Feed("in", v).ok());
  }
  ASSERT_TRUE(pipe.Run({}).ok());
  std::vector<std::any> out = pipe.Drain("out");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(std::any_cast<int>(out[0]), 14);
  EXPECT_EQ(std::any_cast<int>(out[1]), 16);
  EXPECT_EQ(std::any_cast<int>(out[2]), 18);
  EXPECT_TRUE(pipe.Drain("out").empty());  // drained
}

TEST(PipelineStreamTest, FedPortCannotAlsoBeProduced) {
  Pipeline pipe("test");
  ASSERT_TRUE(pipe.Feed("x", 1).ok());
  ASSERT_TRUE(pipe.AddStage({"p", trace::Category::kGeneral, {}, {"x"},
                             IntSource(1)})
                  .ok());
  EXPECT_FALSE(pipe.Prepare().ok());
}

TEST(PipelineFailureTest, StageErrorPropagatesWithStageName) {
  Pipeline pipe("test");
  ASSERT_TRUE(pipe.AddStage({"bomb", trace::Category::kGeneral, {}, {},
                             [](StageContext&) -> Result<StepResult> {
                               return Status::InvalidArgument("boom");
                             }})
                  .ok());
  Status status = pipe.Run({});
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_NE(status.message().find("bomb"), std::string::npos);
  EXPECT_NE(status.message().find("boom"), std::string::npos);
}

TEST(PipelineFailureTest, YieldingForeverWithoutIOIsAStallError) {
  Pipeline pipe("test");
  ASSERT_TRUE(pipe.AddStage({"spinner", trace::Category::kGeneral, {}, {},
                             [](StageContext&) -> Result<StepResult> {
                               return StepResult::kYield;
                             }})
                  .ok());
  Status status = pipe.Run({});
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInternal()) << status.ToString();
  EXPECT_NE(status.message().find("no progress"), std::string::npos)
      << status.ToString();
}

TEST(PipelineFailureTest, YieldAfterExhaustedInputsIsAnError) {
  Pipeline pipe("test");
  ASSERT_TRUE(pipe.AddStage({"source", trace::Category::kGeneral, {},
                             {"stream"}, IntSource(1)})
                  .ok());
  ASSERT_TRUE(pipe.AddStage({"stubborn", trace::Category::kGeneral,
                             {"stream"}, {},
                             [](StageContext& ctx) -> Result<StepResult> {
                               if (ctx.Has(0)) ctx.Pop(0);
                               return StepResult::kYield;  // even on finalize
                             }})
                  .ok());
  Status status = pipe.Run({});
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInternal()) << status.ToString();
  EXPECT_NE(status.message().find("exhausted"), std::string::npos)
      << status.ToString();
}

TEST(PipelineFailureTest, RunningTwiceIsAnError) {
  Pipeline pipe("test");
  ASSERT_TRUE(pipe.AddStage({"s", trace::Category::kGeneral, {}, {},
                             [](StageContext&) -> Result<StepResult> {
                               return StepResult::kDone;
                             }})
                  .ok());
  ASSERT_TRUE(pipe.Run({}).ok());
  EXPECT_TRUE(pipe.Run({}).IsFailedPrecondition());
}

// Runs a 4-source fan plus a deterministic combiner, every stage drawing
// from its private SplitRngs stream, and returns the exact doubles that
// reached the sink. Must be bitwise identical for every thread count.
std::vector<double> RunRngPipeline(uint32_t threads, uint64_t* rng_after) {
  Rng master(20240807);
  Pipeline pipe("det");
  for (int w = 0; w < 4; ++w) {
    std::string port = "draws" + std::to_string(w);
    pipe.AddStage({"worker" + std::to_string(w),
                   trace::Category::kGeneral,
                   {},
                   {port},
                   [](StageContext& ctx) -> Result<StepResult> {
                     ctx.Push(0, ctx.rng().UniformDouble());
                     return ctx.invocation() >= 4 ? StepResult::kDone
                                                  : StepResult::kYield;
                   }})
        .CheckOK();
  }
  std::vector<double> out;
  pipe.AddStage({"combine",
                 trace::Category::kGeneral,
                 {"draws0", "draws1", "draws2", "draws3"},
                 {},
                 [&](StageContext& ctx) -> Result<StepResult> {
                   bool any = false;
                   for (size_t i = 0; i < 4; ++i) {
                     if (!ctx.Has(i)) continue;
                     any = true;
                     out.push_back(std::any_cast<double>(ctx.Pop(i)) +
                                   ctx.rng().UniformDouble());
                   }
                   return any ? StepResult::kYield : StepResult::kDone;
                 }})
      .CheckOK();
  pipe.Run({.num_threads = threads, .rng = &master}).CheckOK();
  *rng_after = master.NextU64();  // master advanced identically everywhere
  return out;
}

TEST(PipelineDeterminismTest, BitwiseIdenticalAcrossThreadCounts) {
  uint64_t rng1 = 0, rng2 = 0, rng4 = 0;
  std::vector<double> at1 = RunRngPipeline(1, &rng1);
  std::vector<double> at2 = RunRngPipeline(2, &rng2);
  std::vector<double> at4 = RunRngPipeline(4, &rng4);
  ASSERT_EQ(at1.size(), 20u);
  ASSERT_EQ(at1.size(), at2.size());
  ASSERT_EQ(at1.size(), at4.size());
  // Bitwise, not approximate: the scheduler must not leak thread count
  // into values or ordering.
  EXPECT_EQ(0, std::memcmp(at1.data(), at2.data(),
                           at1.size() * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(at1.data(), at4.data(),
                           at1.size() * sizeof(double)));
  EXPECT_EQ(rng1, rng2);
  EXPECT_EQ(rng1, rng4);
}

TEST(PipelineObservabilityTest, StageStartFinishEventsAreJournaled) {
  events::Journal& journal = events::Journal::Global();
  const uint64_t before = journal.TypeCount(events::Type::kStage);
  Pipeline pipe("evt");
  std::vector<int> sink;
  ASSERT_TRUE(pipe.AddStage({"source", trace::Category::kWalk, {},
                             {"stream"}, IntSource(3)})
                  .ok());
  ASSERT_TRUE(pipe.AddStage({"sink", trace::Category::kTrain, {"stream"},
                             {}, IntCollect(&sink)})
                  .ok());
  ASSERT_TRUE(pipe.Run({}).ok());
  // One start and one finish record per stage: the watchdog's stage_stall
  // progress signature advances while a DAG runs.
  EXPECT_EQ(journal.TypeCount(events::Type::kStage), before + 4);
}

TEST(PipelineStatsTest, CountersMatchTraffic) {
  Pipeline pipe("stats");
  std::vector<int> sink;
  ASSERT_TRUE(pipe.AddStage({"source", trace::Category::kGeneral, {},
                             {"stream"}, IntSource(5)})
                  .ok());
  ASSERT_TRUE(pipe.AddStage({"sink", trace::Category::kGeneral,
                             {"stream"}, {}, IntCollect(&sink)})
                  .ok());
  ASSERT_TRUE(pipe.Run({}).ok());
  auto source = pipe.stage_stats("source");
  auto drain = pipe.stage_stats("sink");
  ASSERT_TRUE(source.ok() && drain.ok());
  EXPECT_EQ(source->invocations, 5u);
  EXPECT_EQ(source->items_out, 5u);
  EXPECT_EQ(source->first_wave, 0);
  EXPECT_EQ(drain->items_in, 5u);
  EXPECT_TRUE(pipe.stage_stats("missing").status().IsNotFound());
  EXPECT_TRUE(pipe.port_stats("missing").status().IsNotFound());
}

}  // namespace
}  // namespace pipeline
}  // namespace fairgen
