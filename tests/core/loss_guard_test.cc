// Regression tests for the trainer's loss-finiteness guard and the
// in-training fairness probe, both of which must be strictly
// observation-only: a poisoned (NaN) recorded loss batch is skipped from
// the cycle mean and counted in `trainer.nonfinite_batches` without
// moving a single training draw, and enabling `probe_every` publishes
// `probe.*` series and journal events while leaving the generated graph
// bit-identical.

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/events.h"
#include "common/metrics.h"
#include "core/trainer.h"
#include "data/synthetic.h"

namespace fairgen {
namespace {

FairGenConfig QuickConfig() {
  FairGenConfig cfg;
  cfg.num_walks = 60;
  cfg.self_paced_cycles = 2;
  cfg.generator_epochs = 1;
  cfg.generator_batch = 8;
  cfg.batch_size = 32;
  cfg.embedding_dim = 16;
  cfg.ffn_dim = 24;
  cfg.gen_transition_multiplier = 3.0;
  return cfg;
}

LabeledGraph MakeData(uint64_t seed) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 90;
  cfg.num_edges = 500;
  cfg.num_classes = 3;
  cfg.protected_size = 15;
  Rng rng(seed);
  auto data = GenerateSynthetic(cfg, rng);
  EXPECT_TRUE(data.ok());
  return data.MoveValueUnsafe();
}

// Stable textual fingerprint of a graph's full edge multiset.
std::string EdgeFingerprint(const Graph& graph) {
  std::ostringstream out;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out << v << ':';
    for (NodeId u : graph.Neighbors(v)) out << ' ' << u;
    out << '\n';
  }
  return out.str();
}

// Fits on `data` with the given config and returns the generated graph's
// fingerprint.
std::string TrainAndGenerate(const LabeledGraph& data,
                             const FairGenConfig& cfg, uint64_t seed) {
  FairGenTrainer trainer(cfg);
  Rng few_rng(seed);
  EXPECT_TRUE(trainer
                  .SetSupervision(FewShotLabels(data, 4, few_rng),
                                  data.protected_set, data.num_classes)
                  .ok());
  Rng rng(seed);
  EXPECT_TRUE(trainer.Fit(data.graph, rng).ok());
  for (const FairGenLosses& l : trainer.loss_history()) {
    // The guard keeps every *recorded* cycle mean finite even when a
    // batch value was poisoned.
    EXPECT_TRUE(std::isfinite(l.total()));
  }
  auto generated = trainer.Generate(rng);
  EXPECT_TRUE(generated.ok());
  return EdgeFingerprint(*generated);
}

class LossGuardTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("FAIRGEN_INJECT_NAN_LOSS");
    events::Journal::Global().ResetForTest();
  }

  uint64_t NonFiniteBatches() {
    return metrics::MetricsRegistry::Global()
        .GetCounter("trainer.nonfinite_batches")
        .value();
  }
};

TEST_F(LossGuardTest, NanBatchIsCountedAndSkippedWithoutPerturbingRun) {
  LabeledGraph data = MakeData(4);

  ::unsetenv("FAIRGEN_INJECT_NAN_LOSS");
  const uint64_t before_clean = NonFiniteBatches();
  const std::string clean = TrainAndGenerate(data, QuickConfig(), 4);
  EXPECT_EQ(NonFiniteBatches(), before_clean);  // clean run: no guard hits

  // Poison the first recorded generator batch of cycle 1.
  ASSERT_EQ(::setenv("FAIRGEN_INJECT_NAN_LOSS", "1", 1), 0);
  const uint64_t before_injected = NonFiniteBatches();
  const std::string injected = TrainAndGenerate(data, QuickConfig(), 4);
  EXPECT_EQ(NonFiniteBatches(), before_injected + 1);

  // Observation-only: the guard touched the recorded scalar, never the
  // gradients, so the generated graph is unchanged.
  EXPECT_EQ(clean, injected);
}

TEST_F(LossGuardTest, InjectionIsReadPerFitNotCachedPerProcess) {
  LabeledGraph data = MakeData(4);
  ASSERT_EQ(::setenv("FAIRGEN_INJECT_NAN_LOSS", "0", 1), 0);
  const uint64_t before = NonFiniteBatches();
  TrainAndGenerate(data, QuickConfig(), 4);
  EXPECT_EQ(NonFiniteBatches(), before + 1);

  // Clearing the variable disarms the next Fit in the same process.
  ::unsetenv("FAIRGEN_INJECT_NAN_LOSS");
  TrainAndGenerate(data, QuickConfig(), 4);
  EXPECT_EQ(NonFiniteBatches(), before + 1);
}

TEST_F(LossGuardTest, FairnessProbeIsObservationOnly) {
  LabeledGraph data = MakeData(9);
  const std::string unprobed = TrainAndGenerate(data, QuickConfig(), 9);

  events::Journal::Global().ResetForTest();
  FairGenConfig probed_cfg = QuickConfig();
  probed_cfg.probe_every = 1;
  const std::string probed = TrainAndGenerate(data, probed_cfg, 9);

  // Identical outputs, but the probed run published its fairness series
  // and journaled one probe event per cycle.
  EXPECT_EQ(unprobed, probed);
  EXPECT_GE(metrics::MetricsRegistry::Global()
                .GetSeries("probe.disparity_gap")
                .points()
                .size(),
            2u);
  EXPECT_EQ(events::Journal::Global().TypeCount(events::Type::kProbe), 2u);
}

}  // namespace
}  // namespace fairgen
