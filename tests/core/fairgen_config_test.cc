#include "core/fairgen_config.h"

#include <gtest/gtest.h>

namespace fairgen {
namespace {

TEST(FairGenConfigTest, DefaultsAreValid) {
  FairGenConfig cfg;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(FairGenConfigTest, RejectsBadWalkLength) {
  FairGenConfig cfg;
  cfg.walk_length = 1;
  EXPECT_TRUE(cfg.Validate().IsInvalidArgument());
}

TEST(FairGenConfigTest, RejectsZeroWalks) {
  FairGenConfig cfg;
  cfg.num_walks = 0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(FairGenConfigTest, RejectsBadRatio) {
  FairGenConfig cfg;
  cfg.general_ratio = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.general_ratio = -0.1;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(FairGenConfigTest, RejectsNegativeLossWeights) {
  FairGenConfig cfg;
  cfg.alpha = -1.0f;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(FairGenConfigTest, RejectsBadLambda) {
  FairGenConfig cfg;
  cfg.lambda = 0.0f;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.lambda = 0.5f;
  cfg.lambda_growth = 0.9f;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(FairGenConfigTest, RejectsIndivisibleHeads) {
  FairGenConfig cfg;
  cfg.embedding_dim = 30;
  cfg.num_heads = 4;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(FairGenConfigTest, RejectsBadRates) {
  FairGenConfig cfg;
  cfg.generator_lr = 0.0f;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.generator_lr = 1e-3f;
  cfg.temperature = 0.0f;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(FairGenVariantTest, NamesMatchPaper) {
  EXPECT_EQ(FairGenVariantName(FairGenVariant::kFull), "FairGen");
  EXPECT_EQ(FairGenVariantName(FairGenVariant::kRandom), "FairGen-R");
  EXPECT_EQ(FairGenVariantName(FairGenVariant::kNoSelfPaced),
            "FairGen-w/o-SPL");
  EXPECT_EQ(FairGenVariantName(FairGenVariant::kNoParity),
            "FairGen-w/o-Parity");
}

}  // namespace
}  // namespace fairgen
