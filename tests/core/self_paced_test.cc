#include "core/self_paced.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fairgen {
namespace {

// log-probability matrix helper.
nn::Tensor LogProba(std::vector<std::vector<double>> probs) {
  nn::Tensor t(probs.size(), probs[0].size());
  for (size_t r = 0; r < probs.size(); ++r) {
    for (size_t c = 0; c < probs[r].size(); ++c) {
      t.at(r, c) = static_cast<float>(std::log(probs[r][c]));
    }
  }
  return t;
}

TEST(SelfPacedSchedulerTest, AugmentGrowsLambda) {
  SelfPacedScheduler s(0.5f, 2.0f);
  EXPECT_FLOAT_EQ(s.lambda(), 0.5f);
  s.Augment();
  EXPECT_FLOAT_EQ(s.lambda(), 1.0f);
  s.Augment();
  EXPECT_FLOAT_EQ(s.lambda(), 2.0f);
}

TEST(SelfPacedUpdateTest, ConfidentNodesGetPseudoLabels) {
  // Node 0: P(c=1) = 0.9 -> -log = 0.105 < lambda=0.5 -> labeled 1.
  // Node 1: uniform 0.5/0.5 -> -log = 0.69 > 0.5 -> unlabeled.
  SelfPacedScheduler s(0.5f, 1.5f);
  nn::Tensor logp = LogProba({{0.1, 0.9}, {0.5, 0.5}});
  std::vector<int32_t> gt{kUnlabeled, kUnlabeled};
  SelfPacedUpdate u = s.Update(logp, gt, 1.0f);
  EXPECT_EQ(u.labels[0], 1);
  EXPECT_EQ(u.labels[1], kUnlabeled);
  EXPECT_EQ(u.num_pseudo_labeled, 1u);
}

TEST(SelfPacedUpdateTest, GroundTruthAlwaysKept) {
  SelfPacedScheduler s(0.01f, 1.5f);  // nothing passes the threshold
  nn::Tensor logp = LogProba({{0.5, 0.5}, {0.5, 0.5}});
  std::vector<int32_t> gt{1, kUnlabeled};
  SelfPacedUpdate u = s.Update(logp, gt, 1.0f);
  EXPECT_EQ(u.labels[0], 1);
  EXPECT_EQ(u.labels[1], kUnlabeled);
  EXPECT_EQ(u.num_pseudo_labeled, 0u);
}

TEST(SelfPacedUpdateTest, GroundTruthOverridesConfidentDisagreement) {
  // Model is confident the node is class 0, but ground truth says 1.
  SelfPacedScheduler s(1.0f, 1.5f);
  nn::Tensor logp = LogProba({{0.95, 0.05}});
  std::vector<int32_t> gt{1};
  SelfPacedUpdate u = s.Update(logp, gt, 1.0f);
  EXPECT_EQ(u.labels[0], 1);
}

TEST(SelfPacedUpdateTest, MultiClassConfidencePicksArgmax) {
  // Both class 1 and 2 pass the (loose) threshold; argmax (class 2) wins.
  SelfPacedScheduler s(2.0f, 1.5f);
  nn::Tensor logp = LogProba({{0.1, 0.35, 0.55}});
  std::vector<int32_t> gt{kUnlabeled};
  SelfPacedUpdate u = s.Update(logp, gt, 1.0f);
  EXPECT_EQ(u.labels[0], 2);
}

TEST(SelfPacedUpdateTest, GrowingLambdaAdmitsMoreNodes) {
  nn::Tensor logp =
      LogProba({{0.9, 0.1}, {0.7, 0.3}, {0.55, 0.45}, {0.5, 0.5}});
  std::vector<int32_t> gt(4, kUnlabeled);
  SelfPacedScheduler strict(0.2f, 3.0f);
  SelfPacedUpdate u1 = strict.Update(logp, gt, 1.0f);
  strict.Augment();  // lambda = 0.6
  SelfPacedUpdate u2 = strict.Update(logp, gt, 1.0f);
  EXPECT_LT(u1.num_pseudo_labeled, u2.num_pseudo_labeled);
}

TEST(SelfPacedUpdateTest, ClosedFormEq14Boundary) {
  // -log P exactly equal to lambda must NOT be selected (strict <).
  float lambda = 0.6931472f;  // ln 2
  SelfPacedScheduler s(lambda, 1.5f);
  nn::Tensor logp = LogProba({{0.5, 0.5}});
  std::vector<int32_t> gt{kUnlabeled};
  SelfPacedUpdate u = s.Update(logp, gt, 1.0f);
  // -log 0.5 = 0.693147 which is not strictly below lambda (float fuzz
  // decides equality); accept either but require consistency with Eq. 14.
  float neg_logp = -logp.at(0, 0);
  bool selected = u.labels[0] != kUnlabeled;
  EXPECT_EQ(selected, neg_logp < lambda);
}

TEST(SelfPacedUpdateTest, JTermsAccounting) {
  SelfPacedScheduler s(1.0f, 1.5f);
  nn::Tensor logp = LogProba({{0.8, 0.2}});
  std::vector<int32_t> gt{kUnlabeled};
  float beta = 2.0f;
  SelfPacedUpdate u = s.Update(logp, gt, beta);
  // Only class 0 passes (-log 0.8 = 0.223 < 1; -log 0.2 = 1.61 > 1).
  EXPECT_NEAR(u.j_l, -beta * std::log(0.8), 1e-5);
  EXPECT_NEAR(u.j_s, -1.0, 1e-6);
}

TEST(SelfPacedSchedulerDeathTest, InvalidParams) {
  EXPECT_DEATH(SelfPacedScheduler(0.0f, 1.5f), "");
  EXPECT_DEATH(SelfPacedScheduler(0.5f, 0.5f), "");
}

}  // namespace
}  // namespace fairgen
