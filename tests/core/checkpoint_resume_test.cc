// Trainer-level fault-tolerance tests: a training run interrupted at a
// cycle boundary and resumed from its checkpoint directory must replay
// the uninterrupted run bit for bit (parameters, labels, loss history,
// generated graph). Also covers the failure modes: corrupted newest
// checkpoint (fall back to an older one), every checkpoint corrupted
// (descriptive error), fingerprint mismatches, rotation, cadence, the
// emergency (signal-path) checkpoint, and the checkpoint metrics.

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fileio.h"
#include "common/metrics.h"
#include "core/checkpoint.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/serialize.h"

namespace fairgen {
namespace {

// Three cycles so a resume from the cycle-1 checkpoint still has real
// training work left to replay.
FairGenConfig ResumeConfig() {
  FairGenConfig cfg;
  cfg.num_walks = 50;
  cfg.self_paced_cycles = 3;
  cfg.generator_epochs = 1;
  cfg.embedding_dim = 16;
  cfg.ffn_dim = 24;
  cfg.gen_transition_multiplier = 2.0;
  return cfg;
}

struct Fixture {
  LabeledGraph data;
  std::vector<int32_t> few_shot;
};

Fixture MakeFixture() {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 70;
  cfg.num_edges = 350;
  cfg.num_classes = 2;
  cfg.protected_size = 10;
  Rng rng(4);
  auto data = GenerateSynthetic(cfg, rng);
  EXPECT_TRUE(data.ok());
  Fixture fixture{data.MoveValueUnsafe(), {}};
  Rng sup_rng(4);
  fixture.few_shot = FewShotLabels(fixture.data, 4, sup_rng);
  return fixture;
}

std::unique_ptr<FairGenTrainer> NewTrainer(const FairGenConfig& cfg,
                                           const Fixture& fixture) {
  auto trainer = std::make_unique<FairGenTrainer>(cfg);
  EXPECT_TRUE(trainer
                  ->SetSupervision(fixture.few_shot,
                                   fixture.data.protected_set,
                                   fixture.data.num_classes)
                  .ok());
  return trainer;
}

Status FitSeeded(FairGenTrainer& trainer, const Graph& graph,
                 uint64_t seed) {
  Rng rng(seed);
  return trainer.Fit(graph, rng);
}

std::string UniqueDir(const char* name) {
  std::string dir = testing::TempDir() + "/fairgen_resume_" +
                    std::to_string(::getpid()) + "_" + name;
  EXPECT_TRUE(MakeDirectories(dir).ok());
  return dir;
}

// The trained state as bytes: the model-export checkpoint holds the
// fingerprint, every parameter tensor, and the label assignment, and
// contains no timestamps — byte equality is state equality.
std::string ExportBytes(const FairGenTrainer& trainer) {
  std::string path = testing::TempDir() + "/fairgen_resume_export_" +
                     std::to_string(::getpid()) + ".fgckpt";
  EXPECT_TRUE(trainer.SaveCheckpoint(path).ok());
  auto bytes = ReadFileToString(path);
  EXPECT_TRUE(bytes.ok());
  std::remove(path.c_str());
  return bytes.MoveValueUnsafe();
}

void ExpectSameTrainedState(FairGenTrainer& actual,
                            FairGenTrainer& expected) {
  EXPECT_EQ(ExportBytes(actual), ExportBytes(expected));
  ASSERT_EQ(actual.loss_history().size(), expected.loss_history().size());
  for (size_t i = 0; i < expected.loss_history().size(); ++i) {
    EXPECT_EQ(actual.loss_history()[i].total(),
              expected.loss_history()[i].total())
        << "cycle " << i;
  }
  EXPECT_EQ(actual.num_pseudo_labeled(), expected.num_pseudo_labeled());
  EXPECT_EQ(actual.current_labels(), expected.current_labels());
  Rng gen_a(42), gen_b(42);
  auto graph_a = actual.Generate(gen_a);
  auto graph_b = expected.Generate(gen_b);
  ASSERT_TRUE(graph_a.ok());
  ASSERT_TRUE(graph_b.ok());
  EXPECT_EQ(graph_a->ToEdgeList(), graph_b->ToEdgeList());
}

void TruncateFile(const std::string& path, size_t keep) {
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(WriteFileAtomic(path, bytes->substr(0, keep)).ok());
}

// Rewrites one section's payload in place, keeping the container valid.
void ReplaceSection(const std::string& path, const std::string& name,
                    const std::string& payload) {
  auto reader = CheckpointReader::ReadFile(path);
  ASSERT_TRUE(reader.ok());
  CheckpointWriter writer;
  for (const std::string& section : reader->SectionNames()) {
    auto original = reader->Section(section);
    ASSERT_TRUE(original.ok());
    writer.AddSection(section, section == name ? payload : **original);
  }
  ASSERT_TRUE(writer.WriteFile(path).ok());
}

// Enabling checkpointing must not perturb training: the serializer never
// draws from the run RNG, so a checkpointed run and a plain run at the
// same seed produce identical models.
TEST(CheckpointResumeTest, CheckpointingDoesNotChangeTheRun) {
  Fixture fixture = MakeFixture();
  auto plain = NewTrainer(ResumeConfig(), fixture);
  ASSERT_TRUE(FitSeeded(*plain, fixture.data.graph, 7).ok());

  FairGenConfig cfg = ResumeConfig();
  cfg.checkpoint.dir = UniqueDir("nochange");
  auto checkpointed = NewTrainer(cfg, fixture);
  ASSERT_TRUE(FitSeeded(*checkpointed, fixture.data.graph, 7).ok());

  ExpectSameTrainedState(*checkpointed, *plain);
}

TEST(CheckpointResumeTest, ResumeMatchesUninterruptedRun) {
  Fixture fixture = MakeFixture();

  // Uninterrupted reference run.
  FairGenConfig ref_cfg = ResumeConfig();
  ref_cfg.checkpoint.dir = UniqueDir("ref");
  auto reference = NewTrainer(ref_cfg, fixture);
  ASSERT_TRUE(FitSeeded(*reference, fixture.data.graph, 7).ok());

  // "Interrupted" run: a full run's checkpoint directory with every file
  // after the first cycle removed — the state of a run killed during
  // cycle 2.
  FairGenConfig cfg = ResumeConfig();
  cfg.checkpoint.dir = UniqueDir("interrupted");
  cfg.checkpoint.retain = 10;
  {
    auto interrupted = NewTrainer(cfg, fixture);
    ASSERT_TRUE(FitSeeded(*interrupted, fixture.data.graph, 7).ok());
  }
  std::vector<CheckpointFile> files = ListCheckpoints(cfg.checkpoint.dir);
  ASSERT_EQ(files.size(), 3u);
  for (size_t i = 1; i < files.size(); ++i) {
    ASSERT_EQ(std::remove(files[i].path.c_str()), 0);
  }

  cfg.checkpoint.resume = true;
  auto resumed = NewTrainer(cfg, fixture);
  ASSERT_TRUE(FitSeeded(*resumed, fixture.data.graph, 7).ok());

  ExpectSameTrainedState(*resumed, *reference);
}

TEST(CheckpointResumeTest, ResumeFromFinalCheckpointSkipsTraining) {
  Fixture fixture = MakeFixture();
  FairGenConfig cfg = ResumeConfig();
  cfg.checkpoint.dir = UniqueDir("final");
  auto reference = NewTrainer(cfg, fixture);
  ASSERT_TRUE(FitSeeded(*reference, fixture.data.graph, 7).ok());

  // The newest checkpoint is the final-cycle one: the resumed run has
  // nothing left to train but must land in the identical state.
  cfg.checkpoint.resume = true;
  auto resumed = NewTrainer(cfg, fixture);
  ASSERT_TRUE(FitSeeded(*resumed, fixture.data.graph, 7).ok());
  ExpectSameTrainedState(*resumed, *reference);
}

TEST(CheckpointResumeTest, CorruptNewestFallsBackToOlder) {
  Fixture fixture = MakeFixture();
  FairGenConfig ref_cfg = ResumeConfig();
  ref_cfg.checkpoint.dir = UniqueDir("fallback_ref");
  auto reference = NewTrainer(ref_cfg, fixture);
  ASSERT_TRUE(FitSeeded(*reference, fixture.data.graph, 7).ok());

  FairGenConfig cfg = ResumeConfig();
  cfg.checkpoint.dir = UniqueDir("fallback");
  cfg.checkpoint.retain = 10;
  {
    auto full = NewTrainer(cfg, fixture);
    ASSERT_TRUE(FitSeeded(*full, fixture.data.graph, 7).ok());
  }
  // Truncate the final checkpoint mid-file (a crash during a non-atomic
  // copy, say); the cycle-2 checkpoint is still intact.
  std::vector<CheckpointFile> files = ListCheckpoints(cfg.checkpoint.dir);
  ASSERT_EQ(files.size(), 3u);
  TruncateFile(files[2].path, 40);

  cfg.checkpoint.resume = true;
  auto resumed = NewTrainer(cfg, fixture);
  ASSERT_TRUE(FitSeeded(*resumed, fixture.data.graph, 7).ok());
  ExpectSameTrainedState(*resumed, *reference);
}

TEST(CheckpointResumeTest, AllCheckpointsCorruptIsDescriptiveError) {
  Fixture fixture = MakeFixture();
  FairGenConfig cfg = ResumeConfig();
  cfg.checkpoint.dir = UniqueDir("allcorrupt");
  cfg.checkpoint.retain = 10;
  {
    auto full = NewTrainer(cfg, fixture);
    ASSERT_TRUE(FitSeeded(*full, fixture.data.graph, 7).ok());
  }
  for (const CheckpointFile& file : ListCheckpoints(cfg.checkpoint.dir)) {
    TruncateFile(file.path, 16);  // header only: magic + version
  }

  cfg.checkpoint.resume = true;
  auto resumed = NewTrainer(cfg, fixture);
  Status status = FitSeeded(*resumed, fixture.data.graph, 7);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_NE(status.ToString().find("no usable checkpoint"),
            std::string::npos)
      << status.ToString();
}

// Each corruption class on the sectioned format must be rejected with a
// descriptive error and fall through to older checkpoints — never crash,
// never commit a partial restore. With a single (corrupt) checkpoint in
// the directory every variant surfaces as the all-rejected error.
TEST(CheckpointResumeTest, RejectsEveryCorruptionClass) {
  Fixture fixture = MakeFixture();
  FairGenConfig cfg = ResumeConfig();
  cfg.checkpoint.dir = UniqueDir("classes");
  {
    auto full = NewTrainer(cfg, fixture);
    ASSERT_TRUE(FitSeeded(*full, fixture.data.graph, 7).ok());
  }
  std::vector<CheckpointFile> files = ListCheckpoints(cfg.checkpoint.dir);
  ASSERT_FALSE(files.empty());
  auto pristine = ReadFileToString(files.back().path);
  ASSERT_TRUE(pristine.ok());
  const std::string& path = files.back().path;
  // Reduce to a single checkpoint so there is nothing to fall back to.
  for (size_t i = 0; i + 1 < files.size(); ++i) {
    ASSERT_EQ(std::remove(files[i].path.c_str()), 0);
  }

  cfg.checkpoint.resume = true;
  auto expect_rejected = [&](const char* what) {
    auto resumed = NewTrainer(cfg, fixture);
    Status status = FitSeeded(*resumed, fixture.data.graph, 7);
    EXPECT_TRUE(status.IsInvalidArgument())
        << what << ": " << status.ToString();
  };

  // Trailing garbage after the last section.
  ASSERT_TRUE(WriteFileAtomic(path, *pristine + "xyz").ok());
  expect_rejected("trailing bytes");

  // A parameter tensor cut mid-payload (container still well-formed).
  {
    ASSERT_TRUE(WriteFileAtomic(path, *pristine).ok());
    auto reader = CheckpointReader::ReadFile(path);
    ASSERT_TRUE(reader.ok());
    auto params = reader->Section(ckpt::kSectionParams);
    ASSERT_TRUE(params.ok());
    ReplaceSection(path, ckpt::kSectionParams,
                   (*params)->substr(0, (*params)->size() - 4));
    expect_rejected("mid-tensor cut");
  }

  // A label outside [-1, num_classes) — bit rot in the labels section.
  {
    ASSERT_TRUE(WriteFileAtomic(path, *pristine).ok());
    auto reader = CheckpointReader::ReadFile(path);
    ASSERT_TRUE(reader.ok());
    auto labels = reader->Section(ckpt::kSectionLabels);
    ASSERT_TRUE(labels.ok());
    std::string corrupted = **labels;
    ASSERT_GT(corrupted.size(), 12u);  // u64 count + first i32
    corrupted[8] = 99;  // first label -> 99, far beyond num_classes
    corrupted[9] = corrupted[10] = corrupted[11] = 0;
    ReplaceSection(path, ckpt::kSectionLabels, corrupted);
    expect_rejected("label out of range");
  }

  // A truncated container (mid section table).
  ASSERT_TRUE(WriteFileAtomic(path, pristine->substr(0, 40)).ok());
  expect_rejected("truncated container");

  // The pristine file still resumes — the harness above rejected for the
  // injected corruption, not for some environmental reason.
  ASSERT_TRUE(WriteFileAtomic(path, *pristine).ok());
  auto resumed = NewTrainer(cfg, fixture);
  EXPECT_TRUE(FitSeeded(*resumed, fixture.data.graph, 7).ok());
}

TEST(CheckpointResumeTest, RejectsFingerprintMismatch) {
  Fixture fixture = MakeFixture();
  FairGenConfig cfg = ResumeConfig();
  cfg.checkpoint.dir = UniqueDir("fingerprint");
  {
    auto full = NewTrainer(cfg, fixture);
    ASSERT_TRUE(FitSeeded(*full, fixture.data.graph, 7).ok());
  }

  FairGenConfig other = ResumeConfig();
  other.embedding_dim = 32;  // different architecture
  other.ffn_dim = 48;
  other.checkpoint.dir = cfg.checkpoint.dir;
  other.checkpoint.resume = true;
  auto resumed = NewTrainer(other, fixture);
  Status status = FitSeeded(*resumed, fixture.data.graph, 7);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_NE(status.ToString().find("fingerprint"), std::string::npos)
      << status.ToString();
}

TEST(CheckpointResumeTest, RotationBoundsDiskUse) {
  Fixture fixture = MakeFixture();
  FairGenConfig cfg = ResumeConfig();
  cfg.checkpoint.dir = UniqueDir("rotation");
  cfg.checkpoint.retain = 2;
  auto trainer = NewTrainer(cfg, fixture);
  ASSERT_TRUE(FitSeeded(*trainer, fixture.data.graph, 7).ok());

  std::vector<CheckpointFile> files = ListCheckpoints(cfg.checkpoint.dir);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].cycle, 2u);
  EXPECT_EQ(files[1].cycle, 3u);
}

TEST(CheckpointResumeTest, CadenceSkipsCyclesButAlwaysWritesFinal) {
  Fixture fixture = MakeFixture();
  FairGenConfig cfg = ResumeConfig();
  cfg.checkpoint.dir = UniqueDir("cadence");
  cfg.checkpoint.every_cycles = 2;
  cfg.checkpoint.retain = 10;
  auto trainer = NewTrainer(cfg, fixture);
  ASSERT_TRUE(FitSeeded(*trainer, fixture.data.graph, 7).ok());

  // Cycle boundaries 1, 2, 3 with every=2: files at 2 and (final) 3.
  std::vector<CheckpointFile> files = ListCheckpoints(cfg.checkpoint.dir);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].cycle, 2u);
  EXPECT_EQ(files[1].cycle, 3u);
}

TEST(CheckpointResumeTest, EmergencyCheckpointPersistsLatestBoundary) {
  Fixture fixture = MakeFixture();

  // Safe no-op before any training state exists.
  FairGenTrainer idle(ResumeConfig());
  idle.WriteEmergencyCheckpoint();

  FairGenConfig cfg = ResumeConfig();
  cfg.checkpoint.dir = UniqueDir("emergency");
  auto trainer = NewTrainer(cfg, fixture);
  ASSERT_TRUE(FitSeeded(*trainer, fixture.data.graph, 7).ok());

  // Wipe the directory; the emergency path (what the CLI's SIGTERM
  // handler calls) re-persists the last completed-cycle state.
  for (const CheckpointFile& file : ListCheckpoints(cfg.checkpoint.dir)) {
    ASSERT_EQ(std::remove(file.path.c_str()), 0);
  }
  trainer->WriteEmergencyCheckpoint();

  std::vector<CheckpointFile> files = ListCheckpoints(cfg.checkpoint.dir);
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0].cycle, 3u);

  // And the file it wrote is a fully usable checkpoint.
  cfg.checkpoint.resume = true;
  auto resumed = NewTrainer(cfg, fixture);
  ASSERT_TRUE(FitSeeded(*resumed, fixture.data.graph, 7).ok());
  ExpectSameTrainedState(*resumed, *trainer);
}

TEST(CheckpointResumeTest, WriteMetricsAreRecorded) {
  Fixture fixture = MakeFixture();
  const bool was_enabled = metrics::Enabled();
  metrics::SetEnabled(true);
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  registry.GetCounter("checkpoint.writes").Reset();
  registry.GetCounter("checkpoint.bytes").Reset();
  registry.GetGauge("checkpoint.last_epoch").Reset();

  FairGenConfig cfg = ResumeConfig();
  cfg.checkpoint.dir = UniqueDir("metrics");
  auto trainer = NewTrainer(cfg, fixture);
  Status status = FitSeeded(*trainer, fixture.data.graph, 7);
  metrics::SetEnabled(was_enabled);
  ASSERT_TRUE(status.ok());

  EXPECT_EQ(registry.GetCounter("checkpoint.writes").value(), 3u);
  EXPECT_GT(registry.GetCounter("checkpoint.bytes").value(), 0u);
  EXPECT_EQ(registry.GetGauge("checkpoint.last_epoch").value(), 3.0);
}

}  // namespace
}  // namespace fairgen
