// Unit tests of the FGCKPT2 checkpoint container (core/checkpoint.h):
// round-trips, every corruption class the loader must reject without
// crashing (bad magic, bad version, truncation at any byte, trailing
// bytes, duplicate sections), atomic file writes, and the directory
// helpers (naming, listing, rotation).

#include "core/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fileio.h"
#include "nn/serialize.h"

namespace fairgen {
namespace {

std::string TempDirPath(const char* name) {
  return testing::TempDir() + "/fairgen_ckpt_container_" + name;
}

CheckpointWriter MakeWriter() {
  CheckpointWriter writer;
  writer.AddSection("alpha", "first payload");
  writer.AddSection("beta", std::string("\x00\x01\x02\xff", 4));
  writer.AddSection("gamma", "");  // empty payloads are legal
  return writer;
}

TEST(CheckpointContainerTest, RoundTripsSections) {
  std::string blob = MakeWriter().Serialize();
  auto reader = CheckpointReader::Parse(blob);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  EXPECT_EQ(reader->SectionNames(),
            (std::vector<std::string>{"alpha", "beta", "gamma"}));
  EXPECT_TRUE(reader->Has("alpha"));
  EXPECT_FALSE(reader->Has("delta"));

  auto alpha = reader->Section("alpha");
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(**alpha, "first payload");
  auto beta = reader->Section("beta");
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ(**beta, std::string("\x00\x01\x02\xff", 4));
  auto gamma = reader->Section("gamma");
  ASSERT_TRUE(gamma.ok());
  EXPECT_TRUE((*gamma)->empty());

  auto missing = reader->Section("delta");
  EXPECT_TRUE(missing.status().IsNotFound());
  EXPECT_NE(missing.status().ToString().find("delta"), std::string::npos)
      << "error should name the missing section";
}

TEST(CheckpointContainerTest, RejectsBadMagic) {
  std::string blob = MakeWriter().Serialize();
  blob[0] = 'X';
  EXPECT_TRUE(CheckpointReader::Parse(blob).status().IsInvalidArgument());
}

TEST(CheckpointContainerTest, RejectsUnsupportedVersion) {
  std::string blob = MakeWriter().Serialize();
  // The u32 version immediately follows the 8-byte magic.
  blob[8] = static_cast<char>(ckpt::kFormatVersion + 1);
  Status status = CheckpointReader::Parse(blob).status();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.ToString().find("version"), std::string::npos);
}

TEST(CheckpointContainerTest, RejectsTruncationAtEveryByte) {
  // Any strict prefix must fail with InvalidArgument — never crash, never
  // parse successfully (the section count and lengths are all validated).
  std::string blob = MakeWriter().Serialize();
  for (size_t cut = 0; cut < blob.size(); ++cut) {
    Status status =
        CheckpointReader::Parse(blob.substr(0, cut)).status();
    EXPECT_TRUE(status.IsInvalidArgument()) << "prefix length " << cut;
  }
}

TEST(CheckpointContainerTest, RejectsTrailingBytes) {
  std::string blob = MakeWriter().Serialize();
  blob += '\0';
  Status status = CheckpointReader::Parse(blob).status();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.ToString().find("trailing"), std::string::npos);
}

TEST(CheckpointContainerTest, RejectsDuplicateSections) {
  // The writer refuses duplicates outright (FAIRGEN_CHECK), so build the
  // hostile blob by hand with the serialize primitives.
  std::string blob("FGCKPT2\n");
  nn::AppendU32(blob, ckpt::kFormatVersion);
  nn::AppendU32(blob, 2);
  for (int i = 0; i < 2; ++i) {
    nn::AppendString(blob, "dup");
    nn::AppendU64(blob, 1);
    blob.push_back('x');
  }
  Status status = CheckpointReader::Parse(blob).status();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.ToString().find("dup"), std::string::npos);
}

TEST(CheckpointContainerDeathTest, WriterRefusesDuplicateSections) {
  CheckpointWriter writer;
  writer.AddSection("dup", "a");
  EXPECT_DEATH(writer.AddSection("dup", "b"), "duplicate");
}

TEST(CheckpointContainerTest, WriteFileRoundTrips) {
  std::string dir = TempDirPath("write");
  ASSERT_TRUE(MakeDirectories(dir).ok());
  std::string path = dir + "/round.fgckpt";
  ASSERT_TRUE(MakeWriter().WriteFile(path).ok());

  auto reader = CheckpointReader::ReadFile(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto alpha = reader->Section("alpha");
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(**alpha, "first payload");
  // The atomic write leaves no temp file behind.
  EXPECT_FALSE(PathExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(CheckpointContainerTest, FailedWriteLeavesNoFile) {
  std::string path = TempDirPath("missing") + "/nodir/x.fgckpt";
  EXPECT_FALSE(MakeWriter().WriteFile(path).ok());
  EXPECT_FALSE(PathExists(path));
}

TEST(CheckpointContainerTest, ReadFileMissingIsIOError) {
  EXPECT_TRUE(
      CheckpointReader::ReadFile("/no/such/ckpt.fgckpt").status().IsIOError());
}

TEST(CheckpointDirTest, FileNameIsZeroPadded) {
  EXPECT_EQ(CheckpointFileName(4), "ckpt-000004.fgckpt");
  EXPECT_EQ(CheckpointFileName(123456), "ckpt-123456.fgckpt");
}

TEST(CheckpointDirTest, ListsSortedAndIgnoresForeignFiles) {
  std::string dir = TempDirPath("list");
  ASSERT_TRUE(MakeDirectories(dir).ok());
  for (uint32_t cycle : {3u, 1u, 12u}) {
    ASSERT_TRUE(
        WriteFileAtomic(dir + "/" + CheckpointFileName(cycle), "x").ok());
  }
  // Files that don't match the ckpt-NNNNNN.fgckpt pattern are ignored.
  ASSERT_TRUE(WriteFileAtomic(dir + "/notes.txt", "x").ok());
  ASSERT_TRUE(WriteFileAtomic(dir + "/ckpt-abc.fgckpt", "x").ok());

  std::vector<CheckpointFile> files = ListCheckpoints(dir);
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0].cycle, 1u);
  EXPECT_EQ(files[1].cycle, 3u);
  EXPECT_EQ(files[2].cycle, 12u);
  EXPECT_EQ(files[2].path, dir + "/ckpt-000012.fgckpt");
}

TEST(CheckpointDirTest, MissingDirectoryListsEmpty) {
  EXPECT_TRUE(ListCheckpoints("/no/such/checkpoint/dir").empty());
}

TEST(CheckpointDirTest, RotationKeepsNewest) {
  std::string dir = TempDirPath("rotate");
  ASSERT_TRUE(MakeDirectories(dir).ok());
  for (uint32_t cycle = 1; cycle <= 5; ++cycle) {
    ASSERT_TRUE(
        WriteFileAtomic(dir + "/" + CheckpointFileName(cycle), "x").ok());
  }
  RotateCheckpoints(dir, 2);
  std::vector<CheckpointFile> files = ListCheckpoints(dir);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].cycle, 4u);
  EXPECT_EQ(files[1].cycle, 5u);

  // Rotating below the current count is a no-op.
  RotateCheckpoints(dir, 10);
  EXPECT_EQ(ListCheckpoints(dir).size(), 2u);
}

}  // namespace
}  // namespace fairgen
