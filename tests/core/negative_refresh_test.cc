// Tests of the Algorithm 1 step-6 negative-refresh switch.

#include <cmath>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synthetic.h"

namespace fairgen {
namespace {

LabeledGraph MakeData(uint64_t seed) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 70;
  cfg.num_edges = 350;
  cfg.num_classes = 2;
  cfg.protected_size = 10;
  Rng rng(seed);
  auto data = GenerateSynthetic(cfg, rng);
  EXPECT_TRUE(data.ok());
  return data.MoveValueUnsafe();
}

FairGenConfig BaseConfig() {
  FairGenConfig cfg;
  cfg.num_walks = 40;
  cfg.self_paced_cycles = 3;
  cfg.generator_epochs = 1;
  cfg.embedding_dim = 16;
  cfg.ffn_dim = 24;
  cfg.gen_transition_multiplier = 2.0;
  return cfg;
}

TEST(NegativeRefreshTest, DefaultIsAdversarial) {
  EXPECT_TRUE(FairGenConfig{}.refresh_negatives);
}

TEST(NegativeRefreshTest, BothModesTrainToFiniteLosses) {
  LabeledGraph data = MakeData(1);
  for (bool refresh : {true, false}) {
    FairGenConfig cfg = BaseConfig();
    cfg.refresh_negatives = refresh;
    FairGenTrainer trainer(cfg);
    Rng rng(1);
    ASSERT_TRUE(trainer.Fit(data.graph, rng).ok());
    for (const FairGenLosses& l : trainer.loss_history()) {
      EXPECT_TRUE(std::isfinite(l.j_g));
      EXPECT_GT(l.j_g, 0.0);
    }
    auto generated = trainer.Generate(rng);
    ASSERT_TRUE(generated.ok());
    EXPECT_EQ(generated->num_edges(), data.graph.num_edges());
  }
}

TEST(NegativeRefreshTest, ModesProduceDifferentModels) {
  LabeledGraph data = MakeData(2);
  auto run = [&](bool refresh) {
    FairGenConfig cfg = BaseConfig();
    cfg.refresh_negatives = refresh;
    FairGenTrainer trainer(cfg);
    Rng rng(7);
    EXPECT_TRUE(trainer.Fit(data.graph, rng).ok());
    Rng gen_rng(8);
    auto generated = trainer.Generate(gen_rng);
    EXPECT_TRUE(generated.ok());
    return generated->ToEdgeList();
  };
  // The training data differs from cycle 2 onward, so the resulting
  // models (and graphs) must differ.
  EXPECT_NE(run(true), run(false));
}

}  // namespace
}  // namespace fairgen
