#include <cstdio>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/serialize.h"

namespace fairgen {
namespace {

FairGenConfig QuickConfig() {
  FairGenConfig cfg;
  cfg.num_walks = 50;
  cfg.self_paced_cycles = 2;
  cfg.generator_epochs = 1;
  cfg.embedding_dim = 16;
  cfg.ffn_dim = 24;
  cfg.gen_transition_multiplier = 2.0;
  return cfg;
}

LabeledGraph MakeData(uint64_t seed) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 70;
  cfg.num_edges = 350;
  cfg.num_classes = 2;
  cfg.protected_size = 10;
  Rng rng(seed);
  auto data = GenerateSynthetic(cfg, rng);
  EXPECT_TRUE(data.ok());
  return data.MoveValueUnsafe();
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/fairgen_ckpt_" + name + ".bin";
}

TEST(SerializeTest, RoundTripsTensors) {
  Rng rng(1);
  std::vector<nn::Var> params{
      nn::MakeParameter(nn::Tensor::Randn(3, 4, 1.0f, rng)),
      nn::MakeParameter(nn::Tensor::Randn(1, 7, 1.0f, rng))};
  std::string path = TempPath("roundtrip");
  ASSERT_TRUE(nn::SaveParameters(path, params).ok());

  std::vector<nn::Var> restored{nn::MakeParameter(nn::Tensor(3, 4)),
                                nn::MakeParameter(nn::Tensor(1, 7))};
  ASSERT_TRUE(nn::LoadParameters(path, restored).ok());
  for (size_t k = 0; k < params.size(); ++k) {
    for (size_t i = 0; i < params[k]->value.size(); ++i) {
      EXPECT_EQ(restored[k]->value.data()[i], params[k]->value.data()[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsShapeMismatch) {
  Rng rng(2);
  std::vector<nn::Var> params{
      nn::MakeParameter(nn::Tensor::Randn(2, 2, 1.0f, rng))};
  std::string path = TempPath("shape");
  ASSERT_TRUE(nn::SaveParameters(path, params).ok());
  std::vector<nn::Var> wrong{nn::MakeParameter(nn::Tensor(2, 3))};
  Status s = nn::LoadParameters(path, wrong);
  EXPECT_TRUE(s.IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsCountMismatch) {
  Rng rng(3);
  std::vector<nn::Var> params{
      nn::MakeParameter(nn::Tensor::Randn(2, 2, 1.0f, rng))};
  std::string path = TempPath("count");
  ASSERT_TRUE(nn::SaveParameters(path, params).ok());
  std::vector<nn::Var> wrong{nn::MakeParameter(nn::Tensor(2, 2)),
                             nn::MakeParameter(nn::Tensor(2, 2))};
  EXPECT_TRUE(nn::LoadParameters(path, wrong).IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsGarbageFile) {
  std::string path = TempPath("garbage");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a checkpoint", f);
    std::fclose(f);
  }
  std::vector<nn::Var> params{nn::MakeParameter(nn::Tensor(1, 1))};
  EXPECT_TRUE(nn::LoadParameters(path, params).IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIOError) {
  std::vector<nn::Var> params{nn::MakeParameter(nn::Tensor(1, 1))};
  EXPECT_TRUE(
      nn::LoadParameters("/no/such/checkpoint.bin", params).IsIOError());
}

// Regression: trailing bytes after the last tensor (a concatenated or
// bit-rotted file) were silently accepted; the loader must reject them
// and leave the target parameters untouched.
TEST(SerializeTest, RejectsTrailingBytes) {
  Rng rng(6);
  std::vector<nn::Var> params{
      nn::MakeParameter(nn::Tensor::Randn(2, 2, 1.0f, rng))};
  std::string path = TempPath("trailing");
  ASSERT_TRUE(nn::SaveParameters(path, params).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    std::fputc(0, f);
    std::fclose(f);
  }
  std::vector<nn::Var> target{nn::MakeParameter(nn::Tensor(2, 2, 7.0f))};
  EXPECT_TRUE(nn::LoadParameters(path, target).IsInvalidArgument());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(target[0]->value.data()[i], 7.0f) << "partial load";
  }
  std::remove(path.c_str());
}

// Regression: a failed save used to leave a truncated garbage file at
// the destination; the atomic write must leave no file at all.
TEST(SerializeTest, FailedSaveLeavesNoFile) {
  Rng rng(7);
  std::vector<nn::Var> params{
      nn::MakeParameter(nn::Tensor::Randn(2, 2, 1.0f, rng))};
  std::string path =
      testing::TempDir() + "/fairgen_no_such_dir/ckpt.bin";
  EXPECT_FALSE(nn::SaveParameters(path, params).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr) << "failed save left a file behind";
  if (f != nullptr) std::fclose(f);
}

TEST(CheckpointTest, RequiresPrepare) {
  FairGenTrainer trainer(QuickConfig());
  EXPECT_TRUE(
      trainer.SaveCheckpoint(TempPath("x")).IsFailedPrecondition());
  EXPECT_TRUE(
      trainer.LoadCheckpoint(TempPath("x")).IsFailedPrecondition());
}

TEST(CheckpointTest, RestoredModelGeneratesIdentically) {
  LabeledGraph data = MakeData(4);
  Rng sup_rng(4);
  std::vector<int32_t> few = FewShotLabels(data, 4, sup_rng);

  // Train and checkpoint.
  FairGenTrainer trained(QuickConfig());
  ASSERT_TRUE(
      trained.SetSupervision(few, data.protected_set, data.num_classes)
          .ok());
  Rng fit_rng(4);
  ASSERT_TRUE(trained.Fit(data.graph, fit_rng).ok());
  std::string path = TempPath("model");
  ASSERT_TRUE(trained.SaveCheckpoint(path).ok());

  // Fresh trainer: Prepare (same config & graph) + LoadCheckpoint.
  FairGenTrainer restored(QuickConfig());
  ASSERT_TRUE(
      restored.SetSupervision(few, data.protected_set, data.num_classes)
          .ok());
  Rng prep_rng(999);  // different init — overwritten by the checkpoint
  ASSERT_TRUE(restored.Prepare(data.graph, prep_rng).ok());
  ASSERT_TRUE(restored.LoadCheckpoint(path).ok());

  // Identical generation RNG -> identical graphs.
  Rng gen_a(42);
  Rng gen_b(42);
  auto graph_a = trained.Generate(gen_a);
  auto graph_b = restored.Generate(gen_b);
  ASSERT_TRUE(graph_a.ok());
  ASSERT_TRUE(graph_b.ok());
  EXPECT_EQ(graph_a->ToEdgeList(), graph_b->ToEdgeList());
  std::remove(path.c_str());
}

// Satellite of the label-serialization fix: labels travel as native
// int32 and every entry must be kUnlabeled or a valid class id — a
// corrupted labels section is rejected before anything is committed.
TEST(CheckpointTest, LoadRejectsOutOfRangeLabel) {
  LabeledGraph data = MakeData(6);
  Rng sup_rng(6);
  std::vector<int32_t> few = FewShotLabels(data, 4, sup_rng);
  FairGenTrainer trained(QuickConfig());
  ASSERT_TRUE(
      trained.SetSupervision(few, data.protected_set, data.num_classes)
          .ok());
  Rng fit_rng(6);
  ASSERT_TRUE(trained.Fit(data.graph, fit_rng).ok());
  std::string path = TempPath("badlabel");
  ASSERT_TRUE(trained.SaveCheckpoint(path).ok());

  // Rewrite the labels section with the first entry out of range.
  auto reader = CheckpointReader::ReadFile(path);
  ASSERT_TRUE(reader.ok());
  CheckpointWriter writer;
  for (const std::string& name : reader->SectionNames()) {
    auto payload = reader->Section(name);
    ASSERT_TRUE(payload.ok());
    std::string bytes = **payload;
    if (name == ckpt::kSectionLabels) {
      ASSERT_GT(bytes.size(), 12u);  // u64 count + first i32
      bytes[8] = 99;  // far beyond num_classes
      bytes[9] = bytes[10] = bytes[11] = 0;
    }
    writer.AddSection(name, bytes);
  }
  ASSERT_TRUE(writer.WriteFile(path).ok());

  Status status = trained.LoadCheckpoint(path);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_NE(status.ToString().find("label"), std::string::npos)
      << status.ToString();
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadRejectsDifferentArchitecture) {
  LabeledGraph data = MakeData(5);
  FairGenTrainer trained(QuickConfig());
  Rng rng(5);
  ASSERT_TRUE(trained.Fit(data.graph, rng).ok());
  std::string path = TempPath("arch");
  ASSERT_TRUE(trained.SaveCheckpoint(path).ok());

  FairGenConfig other_cfg = QuickConfig();
  other_cfg.embedding_dim = 32;  // different width
  other_cfg.ffn_dim = 48;
  FairGenTrainer other(other_cfg);
  Rng rng2(5);
  ASSERT_TRUE(other.Prepare(data.graph, rng2).ok());
  EXPECT_TRUE(other.LoadCheckpoint(path).IsInvalidArgument());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fairgen
