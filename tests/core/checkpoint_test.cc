#include <cstdio>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/serialize.h"

namespace fairgen {
namespace {

FairGenConfig QuickConfig() {
  FairGenConfig cfg;
  cfg.num_walks = 50;
  cfg.self_paced_cycles = 2;
  cfg.generator_epochs = 1;
  cfg.embedding_dim = 16;
  cfg.ffn_dim = 24;
  cfg.gen_transition_multiplier = 2.0;
  return cfg;
}

LabeledGraph MakeData(uint64_t seed) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 70;
  cfg.num_edges = 350;
  cfg.num_classes = 2;
  cfg.protected_size = 10;
  Rng rng(seed);
  auto data = GenerateSynthetic(cfg, rng);
  EXPECT_TRUE(data.ok());
  return data.MoveValueUnsafe();
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/fairgen_ckpt_" + name + ".bin";
}

TEST(SerializeTest, RoundTripsTensors) {
  Rng rng(1);
  std::vector<nn::Var> params{
      nn::MakeParameter(nn::Tensor::Randn(3, 4, 1.0f, rng)),
      nn::MakeParameter(nn::Tensor::Randn(1, 7, 1.0f, rng))};
  std::string path = TempPath("roundtrip");
  ASSERT_TRUE(nn::SaveParameters(path, params).ok());

  std::vector<nn::Var> restored{nn::MakeParameter(nn::Tensor(3, 4)),
                                nn::MakeParameter(nn::Tensor(1, 7))};
  ASSERT_TRUE(nn::LoadParameters(path, restored).ok());
  for (size_t k = 0; k < params.size(); ++k) {
    for (size_t i = 0; i < params[k]->value.size(); ++i) {
      EXPECT_EQ(restored[k]->value.data()[i], params[k]->value.data()[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsShapeMismatch) {
  Rng rng(2);
  std::vector<nn::Var> params{
      nn::MakeParameter(nn::Tensor::Randn(2, 2, 1.0f, rng))};
  std::string path = TempPath("shape");
  ASSERT_TRUE(nn::SaveParameters(path, params).ok());
  std::vector<nn::Var> wrong{nn::MakeParameter(nn::Tensor(2, 3))};
  Status s = nn::LoadParameters(path, wrong);
  EXPECT_TRUE(s.IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsCountMismatch) {
  Rng rng(3);
  std::vector<nn::Var> params{
      nn::MakeParameter(nn::Tensor::Randn(2, 2, 1.0f, rng))};
  std::string path = TempPath("count");
  ASSERT_TRUE(nn::SaveParameters(path, params).ok());
  std::vector<nn::Var> wrong{nn::MakeParameter(nn::Tensor(2, 2)),
                             nn::MakeParameter(nn::Tensor(2, 2))};
  EXPECT_TRUE(nn::LoadParameters(path, wrong).IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsGarbageFile) {
  std::string path = TempPath("garbage");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a checkpoint", f);
    std::fclose(f);
  }
  std::vector<nn::Var> params{nn::MakeParameter(nn::Tensor(1, 1))};
  EXPECT_TRUE(nn::LoadParameters(path, params).IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIOError) {
  std::vector<nn::Var> params{nn::MakeParameter(nn::Tensor(1, 1))};
  EXPECT_TRUE(
      nn::LoadParameters("/no/such/checkpoint.bin", params).IsIOError());
}

TEST(CheckpointTest, RequiresPrepare) {
  FairGenTrainer trainer(QuickConfig());
  EXPECT_TRUE(
      trainer.SaveCheckpoint(TempPath("x")).IsFailedPrecondition());
  EXPECT_TRUE(
      trainer.LoadCheckpoint(TempPath("x")).IsFailedPrecondition());
}

TEST(CheckpointTest, RestoredModelGeneratesIdentically) {
  LabeledGraph data = MakeData(4);
  Rng sup_rng(4);
  std::vector<int32_t> few = FewShotLabels(data, 4, sup_rng);

  // Train and checkpoint.
  FairGenTrainer trained(QuickConfig());
  ASSERT_TRUE(
      trained.SetSupervision(few, data.protected_set, data.num_classes)
          .ok());
  Rng fit_rng(4);
  ASSERT_TRUE(trained.Fit(data.graph, fit_rng).ok());
  std::string path = TempPath("model");
  ASSERT_TRUE(trained.SaveCheckpoint(path).ok());

  // Fresh trainer: Prepare (same config & graph) + LoadCheckpoint.
  FairGenTrainer restored(QuickConfig());
  ASSERT_TRUE(
      restored.SetSupervision(few, data.protected_set, data.num_classes)
          .ok());
  Rng prep_rng(999);  // different init — overwritten by the checkpoint
  ASSERT_TRUE(restored.Prepare(data.graph, prep_rng).ok());
  ASSERT_TRUE(restored.LoadCheckpoint(path).ok());

  // Identical generation RNG -> identical graphs.
  Rng gen_a(42);
  Rng gen_b(42);
  auto graph_a = trained.Generate(gen_a);
  auto graph_b = restored.Generate(gen_b);
  ASSERT_TRUE(graph_a.ok());
  ASSERT_TRUE(graph_b.ok());
  EXPECT_EQ(graph_a->ToEdgeList(), graph_b->ToEdgeList());
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadRejectsDifferentArchitecture) {
  LabeledGraph data = MakeData(5);
  FairGenTrainer trained(QuickConfig());
  Rng rng(5);
  ASSERT_TRUE(trained.Fit(data.graph, rng).ok());
  std::string path = TempPath("arch");
  ASSERT_TRUE(trained.SaveCheckpoint(path).ok());

  FairGenConfig other_cfg = QuickConfig();
  other_cfg.embedding_dim = 32;  // different width
  other_cfg.ffn_dim = 48;
  FairGenTrainer other(other_cfg);
  Rng rng2(5);
  ASSERT_TRUE(other.Prepare(data.graph, rng2).ok());
  EXPECT_TRUE(other.LoadCheckpoint(path).IsInvalidArgument());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fairgen
