#include "core/fair_learning.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/subgraph.h"
#include "nn/optimizer.h"

namespace fairgen {
namespace {

// A tiny setup: 10 nodes, first 3 protected, 2 classes, shared embedding.
struct Fixture {
  nn::Var embeddings;
  std::unique_ptr<FairLearningModule> module;
  std::vector<NodeId> protected_set{0, 1, 2};

  explicit Fixture(uint64_t seed, uint32_t num_classes = 2) {
    Rng rng(seed);
    embeddings = nn::MakeParameter(nn::Tensor::Randn(10, 6, 1.0f, rng));
    module = std::make_unique<FairLearningModule>(
        embeddings, num_classes, 8, NodeMask(10, protected_set), rng);
  }
};

TEST(FairLearningTest, GroupCounts) {
  Fixture f(1);
  EXPECT_EQ(f.module->num_protected(), 3u);
  EXPECT_EQ(f.module->num_unprotected(), 7u);
  EXPECT_EQ(f.module->num_classes(), 2u);
}

TEST(FairLearningTest, CostRatioMatchesEq9) {
  Fixture f(2);
  EXPECT_NEAR(f.module->CostRatio(0), 1.0f / 3.0f, 1e-6);
  EXPECT_NEAR(f.module->CostRatio(5), 1.0f / 7.0f, 1e-6);
  // The minority carries the larger per-example weight.
  EXPECT_GT(f.module->CostRatio(0), f.module->CostRatio(5));
}

TEST(FairLearningTest, LogitsShape) {
  Fixture f(3);
  nn::Var logits = f.module->Logits({0, 4, 9});
  EXPECT_EQ(logits->rows(), 3u);
  EXPECT_EQ(logits->cols(), 2u);
}

TEST(FairLearningTest, PredictionLossFiniteAndWeighted) {
  Fixture f(4);
  nn::Var loss =
      f.module->PredictionLoss({0, 5}, {0, 1}, /*alpha=*/1.0f);
  float v = loss->value.ScalarValue();
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 0.0f);
  // alpha scales linearly.
  nn::Var scaled =
      f.module->PredictionLoss({0, 5}, {0, 1}, /*alpha=*/2.0f);
  EXPECT_NEAR(scaled->value.ScalarValue(), 2.0f * v, 1e-4);
}

TEST(FairLearningTest, ParityLossZeroForIdenticalGroups) {
  Fixture f(5);
  // Same node list on both sides: means coincide, parity gap is zero.
  nn::Var loss = f.module->ParityLoss({0, 1}, {0, 1}, 1.0f);
  EXPECT_NEAR(loss->value.ScalarValue(), 0.0f, 1e-6);
}

TEST(FairLearningTest, ParityLossPositiveForDifferentGroups) {
  Fixture f(6);
  nn::Var loss = f.module->ParityLoss({0, 1, 2}, {3, 4, 5, 6}, 1.0f);
  EXPECT_GT(loss->value.ScalarValue(), 0.0f);
}

TEST(FairLearningTest, ParityLossGammaScales) {
  Fixture f(7);
  float base =
      f.module->ParityLoss({0, 1}, {4, 5}, 1.0f)->value.ScalarValue();
  float tripled =
      f.module->ParityLoss({0, 1}, {4, 5}, 3.0f)->value.ScalarValue();
  EXPECT_NEAR(tripled, 3.0f * base, 1e-4);
}

TEST(FairLearningTest, PropagationLossIsScaledCrossEntropy) {
  Fixture f(8);
  float b1 = f.module->PropagationLoss({3, 4}, {0, 1}, 1.0f)
                 ->value.ScalarValue();
  float b2 = f.module->PropagationLoss({3, 4}, {0, 1}, 2.0f)
                 ->value.ScalarValue();
  EXPECT_NEAR(b2, 2.0f * b1, 1e-4);
}

TEST(FairLearningTest, LogProbaAllShapeAndNormalization) {
  Fixture f(9, /*num_classes=*/3);
  nn::Tensor logp = f.module->LogProbaAll();
  EXPECT_EQ(logp.rows(), 10u);
  EXPECT_EQ(logp.cols(), 3u);
  for (size_t r = 0; r < 10; ++r) {
    double total = 0.0;
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_LE(logp.at(r, c), 0.0f);
      total += std::exp(logp.at(r, c));
    }
    EXPECT_NEAR(total, 1.0, 1e-4);
  }
}

TEST(FairLearningTest, TrainingReducesParityGap) {
  // Optimizing J_F alone must shrink the statistical parity gap — the
  // mechanism behind the w/o-Parity ablation's degradation.
  Fixture f(10);
  std::vector<nn::Var> params = f.module->HeadParameters();
  params.push_back(f.embeddings);
  nn::Adam optim(params, 5e-3f);
  std::vector<uint32_t> prot{0, 1, 2};
  std::vector<uint32_t> unprot{3, 4, 5, 6, 7, 8, 9};
  float initial =
      f.module->ParityLoss(prot, unprot, 1.0f)->value.ScalarValue();
  for (int step = 0; step < 150; ++step) {
    optim.ZeroGrad();
    nn::Backward(f.module->ParityLoss(prot, unprot, 1.0f));
    optim.Step();
  }
  float final =
      f.module->ParityLoss(prot, unprot, 1.0f)->value.ScalarValue();
  EXPECT_LT(final, initial * 0.5f);
}

TEST(FairLearningTest, JointTrainingFitsLabelsWhileKeepingParity) {
  Fixture f(11);
  std::vector<nn::Var> params = f.module->HeadParameters();
  params.push_back(f.embeddings);
  nn::Adam optim(params, 1e-2f);
  // Labels: protected nodes class 0, some unprotected class 1.
  std::vector<uint32_t> nodes{0, 1, 2, 5, 6, 7};
  std::vector<uint32_t> labels{0, 0, 0, 1, 1, 1};
  for (int step = 0; step < 200; ++step) {
    optim.ZeroGrad();
    nn::Var loss = f.module->PredictionLoss(nodes, labels, 1.0f);
    nn::Backward(loss);
    optim.Step();
  }
  // Predictions should be correct now.
  nn::Tensor logp = f.module->LogProbaAll();
  for (size_t i = 0; i < nodes.size(); ++i) {
    uint32_t pred = logp.at(nodes[i], 1) > logp.at(nodes[i], 0) ? 1 : 0;
    EXPECT_EQ(pred, labels[i]) << "node " << nodes[i];
  }
}

}  // namespace
}  // namespace fairgen
