#include "core/assembler.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "graph/subgraph.h"
#include "walk/random_walk.h"

namespace fairgen {
namespace {

// A small labeled graph plus an accumulator filled with real-walk counts —
// a realistic high-quality score matrix.
struct Fixture {
  LabeledGraph data;
  EdgeScoreAccumulator acc;

  explicit Fixture(uint64_t seed, uint32_t walks = 3000)
      : data(MakeData(seed)), acc(data.graph.num_nodes()) {
    Rng rng(seed ^ 0xabc);
    RandomWalker walker(data.graph);
    for (uint32_t i = 0; i < walks; ++i) {
      acc.AddWalk(walker.UniformWalk(walker.SampleStartNode(rng), 8, rng));
    }
  }

  static LabeledGraph MakeData(uint64_t seed) {
    SyntheticGraphConfig cfg;
    cfg.num_nodes = 120;
    cfg.num_edges = 700;
    cfg.num_classes = 3;
    cfg.protected_size = 20;
    Rng rng(seed);
    auto data = GenerateSynthetic(cfg, rng);
    EXPECT_TRUE(data.ok());
    return data.MoveValueUnsafe();
  }
};

TEST(AssemblerTest, MatchesEdgeBudget) {
  Fixture f(1);
  Rng rng(1);
  AssemblyReport report;
  auto g = AssembleFairGraph(f.acc, f.data.graph, f.data.protected_set, {},
                             rng, &report);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), f.data.graph.num_edges());
  EXPECT_EQ(report.assembled_edges, f.data.graph.num_edges());
  EXPECT_EQ(report.target_edges, f.data.graph.num_edges());
}

TEST(AssemblerTest, EveryActiveNodeGetsAnEdge) {
  Fixture f(2);
  Rng rng(2);
  auto g = AssembleFairGraph(f.acc, f.data.graph, f.data.protected_set, {},
                             rng);
  ASSERT_TRUE(g.ok());
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    if (f.data.graph.Degree(v) > 0) {
      EXPECT_GE(g->Degree(v), 1u) << "node " << v << " left isolated";
    }
  }
}

TEST(AssemblerTest, ProtectedVolumeApproximatelyPreserved) {
  Fixture f(3);
  Rng rng(3);
  AssemblyReport report;
  auto g = AssembleFairGraph(f.acc, f.data.graph, f.data.protected_set, {},
                             rng, &report);
  ASSERT_TRUE(g.ok());
  uint64_t target = f.data.graph.Volume(f.data.protected_set);
  uint64_t achieved = g->Volume(f.data.protected_set);
  EXPECT_EQ(report.protected_volume_target, target);
  // The greedy phases should reach at least 60% of the target volume with
  // a real-walk score matrix (and not overshoot absurdly).
  EXPECT_GE(achieved, target * 6 / 10);
  EXPECT_LE(achieved, target * 2);
}

TEST(AssemblerTest, CriteriaCanBeDisabled) {
  Fixture f(4);
  Rng rng(4);
  AssemblerCriteria off;
  off.preserve_protected_volume = false;
  off.ensure_min_degree = false;
  AssemblyReport report;
  auto g = AssembleFairGraph(f.acc, f.data.graph, f.data.protected_set, off,
                             rng, &report);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(report.isolated_nodes_fixed, 0u);
  EXPECT_EQ(report.protected_volume_target, 0u);
  // Without criteria this must match plain top-m thresholding.
  auto top = f.acc.BuildTopEdges(f.data.graph.num_edges());
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(g->ToEdgeList(), top->ToEdgeList());
}

TEST(AssemblerTest, IsolatedInOriginalStaysIsolated) {
  // Node with degree 0 in G gets no coverage edge.
  auto g_in = Graph::FromEdges(4, {{0, 1}, {1, 2}});
  ASSERT_TRUE(g_in.ok());
  EdgeScoreAccumulator acc(4);
  acc.AddEdge(0, 1, 5.0);
  acc.AddEdge(1, 2, 4.0);
  Rng rng(5);
  auto g = AssembleFairGraph(acc, *g_in, {}, {}, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->Degree(3), 0u);
}

TEST(AssemblerTest, UnvisitedNodeGetsFallbackEdge) {
  // Node 3 has degree > 0 in G but no scored candidate at all.
  auto g_in = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  ASSERT_TRUE(g_in.ok());
  EdgeScoreAccumulator acc(4);
  acc.AddEdge(0, 1, 5.0);
  acc.AddEdge(1, 2, 4.0);
  acc.AddEdge(0, 2, 3.0);
  Rng rng(6);
  AssemblyReport report;
  auto g = AssembleFairGraph(acc, *g_in, {}, {}, rng, &report);
  ASSERT_TRUE(g.ok());
  EXPECT_GE(g->Degree(3), 1u);
  EXPECT_EQ(report.fallback_edges, 1u);
}

TEST(AssemblerTest, NodeCountMismatchRejected) {
  auto g_in = Graph::FromEdges(4, {{0, 1}});
  ASSERT_TRUE(g_in.ok());
  EdgeScoreAccumulator acc(5);
  Rng rng(7);
  EXPECT_FALSE(AssembleFairGraph(acc, *g_in, {}, {}, rng).ok());
}

TEST(AssemblerTest, ProtectedInternalEdgesPreferred) {
  // Score matrix offers both internal and external protected edges; the
  // assembler must include enough internal ones to match the original's
  // induced count.
  auto g_in = Graph::FromEdges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {2, 3}});  // S+ = {0,1,2}
  ASSERT_TRUE(g_in.ok());
  std::vector<NodeId> protected_set{0, 1, 2};
  EdgeScoreAccumulator acc(6);
  // External candidates score higher, internal lower — without phase B1
  // the internal edges would lose.
  acc.AddEdge(0, 3, 10.0);
  acc.AddEdge(1, 4, 9.0);
  acc.AddEdge(2, 5, 8.0);
  acc.AddEdge(3, 4, 7.0);
  acc.AddEdge(4, 5, 6.5);
  acc.AddEdge(0, 1, 3.0);
  acc.AddEdge(1, 2, 2.0);
  acc.AddEdge(0, 2, 1.0);
  Rng rng(8);
  auto g = AssembleFairGraph(acc, *g_in, protected_set, {}, rng);
  ASSERT_TRUE(g.ok());
  auto sub = InducedSubgraph(*g, protected_set);
  ASSERT_TRUE(sub.ok());
  // Original induced subgraph has 3 edges (the triangle).
  EXPECT_GE(sub->graph.num_edges(), 2u);
}

}  // namespace
}  // namespace fairgen
