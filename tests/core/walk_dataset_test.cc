#include "core/walk_dataset.h"

#include <gtest/gtest.h>

namespace fairgen {
namespace {

TEST(WalkDatasetTest, StartsEmpty) {
  WalkDataset ds;
  EXPECT_EQ(ds.num_positives(), 0u);
  EXPECT_EQ(ds.num_negatives(), 0u);
}

TEST(WalkDatasetTest, AddsToPools) {
  WalkDataset ds;
  ds.AddPositives({{0, 1}, {1, 2}});
  ds.AddNegatives({{2, 3}});
  EXPECT_EQ(ds.num_positives(), 2u);
  EXPECT_EQ(ds.num_negatives(), 1u);
  EXPECT_EQ(ds.positives()[1], (Walk{1, 2}));
  EXPECT_EQ(ds.negatives()[0], (Walk{2, 3}));
}

TEST(WalkDatasetTest, AppendsPreserveOrder) {
  WalkDataset ds;
  ds.AddPositives({{0}});
  ds.AddPositives({{1}});
  EXPECT_EQ(ds.positives()[0], (Walk{0}));
  EXPECT_EQ(ds.positives()[1], (Walk{1}));
}

TEST(WalkDatasetTest, TrimKeepsMostRecent) {
  WalkDataset ds;
  for (NodeId i = 0; i < 10; ++i) {
    ds.AddPositives({{i}});
    ds.AddNegatives({{i, i}});
  }
  ds.TrimTo(3);
  EXPECT_EQ(ds.num_positives(), 3u);
  EXPECT_EQ(ds.num_negatives(), 3u);
  EXPECT_EQ(ds.positives()[0], (Walk{7}));
  EXPECT_EQ(ds.positives()[2], (Walk{9}));
}

TEST(WalkDatasetTest, TrimNoOpWhenSmaller) {
  WalkDataset ds;
  ds.AddPositives({{0}});
  ds.TrimTo(10);
  EXPECT_EQ(ds.num_positives(), 1u);
}

TEST(WalkDatasetTest, EpochOrderCoversBothPools) {
  WalkDataset ds;
  ds.AddPositives({{0}, {1}, {2}});
  ds.AddNegatives({{3}, {4}});
  Rng rng(1);
  auto order = ds.EpochOrder(rng);
  ASSERT_EQ(order.size(), 5u);
  int positives = 0;
  std::set<std::pair<bool, uint32_t>> seen;
  for (const auto& entry : order) {
    EXPECT_TRUE(seen.insert(entry).second);
    if (entry.first) {
      ++positives;
      EXPECT_LT(entry.second, 3u);
    } else {
      EXPECT_LT(entry.second, 2u);
    }
  }
  EXPECT_EQ(positives, 3);
}

TEST(WalkDatasetTest, EpochOrderIsShuffled) {
  WalkDataset ds;
  for (NodeId i = 0; i < 50; ++i) ds.AddPositives({{i}});
  Rng rng(2);
  auto a = ds.EpochOrder(rng);
  auto b = ds.EpochOrder(rng);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace fairgen
