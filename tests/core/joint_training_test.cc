// Tests of the M1/M2 coupling: the discriminator d_θ consumes the
// generator's embedding table, so discriminator training must move the
// generator's representation and vice versa — the "jointly trains ... in a
// mutually beneficial way" mechanism of the framework.

#include <gtest/gtest.h>

#include "core/fairgen_model.h"
#include "graph/subgraph.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace fairgen {
namespace {

FairGenConfig SmallConfig() {
  FairGenConfig cfg;
  cfg.embedding_dim = 16;
  cfg.ffn_dim = 24;
  cfg.discriminator_hidden = 16;
  return cfg;
}

TEST(JointTrainingTest, EmbeddingTableIsShared) {
  Rng rng(1);
  FairGenModel model(SmallConfig(), /*num_nodes=*/20, /*num_classes=*/2,
                     NodeMask(20, {0, 1}), rng);
  // The discriminator parameter set must contain the generator's
  // embedding table (same node, not a copy).
  const nn::Var& table = model.generator().node_embeddings();
  bool found = false;
  for (const nn::Var& p : model.DiscriminatorParameters()) {
    if (p.get() == table.get()) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(JointTrainingTest, DiscriminatorLossMovesGeneratorEmbeddings) {
  Rng rng(2);
  FairGenModel model(SmallConfig(), 20, 2, NodeMask(20, {0, 1}), rng);
  nn::Tensor before = model.generator().node_embeddings()->value;

  nn::Adam optim(model.DiscriminatorParameters(), 1e-2f);
  std::vector<uint32_t> nodes{0, 1, 5, 6};
  std::vector<uint32_t> labels{0, 0, 1, 1};
  for (int step = 0; step < 5; ++step) {
    optim.ZeroGrad();
    nn::Backward(model.fair_module().PredictionLoss(nodes, labels, 1.0f));
    optim.Step();
  }
  const nn::Tensor& after = model.generator().node_embeddings()->value;
  double diff = 0.0;
  for (size_t i = 0; i < after.size(); ++i) {
    diff += std::abs(after.data()[i] - before.data()[i]);
  }
  EXPECT_GT(diff, 1e-4) << "discriminator training left embeddings frozen";
}

TEST(JointTrainingTest, GeneratorLossMovesDiscriminatorInputs) {
  Rng rng(3);
  FairGenModel model(SmallConfig(), 20, 2, NodeMask(20, {0, 1}), rng);
  // Logits of the (untrained) discriminator for some nodes.
  nn::Tensor logits_before =
      model.fair_module().Logits({2, 3, 4})->value;

  nn::Adam optim(model.GeneratorParameters(), 1e-2f);
  std::vector<uint32_t> walk{0, 5, 10, 15};
  for (int step = 0; step < 5; ++step) {
    optim.ZeroGrad();
    nn::Backward(model.generator().WalkNll(walk));
    optim.Step();
  }
  nn::Tensor logits_after = model.fair_module().Logits({2, 3, 4})->value;
  double diff = 0.0;
  for (size_t i = 0; i < logits_after.size(); ++i) {
    diff += std::abs(logits_after.data()[i] - logits_before.data()[i]);
  }
  EXPECT_GT(diff, 1e-4)
      << "generator training did not propagate into d_theta's inputs";
}

TEST(JointTrainingTest, GeneratorParamsSupersetCheck) {
  Rng rng(4);
  FairGenModel model(SmallConfig(), 30, 3, NodeMask(30, {0}), rng);
  // Generator owns tok/pos embeddings + block + final LN; the
  // discriminator head adds its MLP (2 linear layers => 4 tensors).
  size_t gen = model.GeneratorParameters().size();
  size_t disc = model.DiscriminatorParameters().size();
  EXPECT_GT(gen, 10u);
  EXPECT_EQ(disc, model.fair_module().HeadParameters().size() + 1);
  EXPECT_EQ(model.num_nodes(), 30u);
  EXPECT_EQ(model.num_classes(), 3u);
}

}  // namespace
}  // namespace fairgen
