// Tests for the generation-side APIs added on top of Algorithm 1:
// ScoreEdges (candidate scoring for augmentation) and
// GenerateWithCriteria (assembler ablation).

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "generators/er.h"
#include "generators/netgan.h"
#include "graph/subgraph.h"
#include "stats/discrepancy.h"

namespace fairgen {
namespace {

struct Fixture {
  LabeledGraph data;
  FairGenTrainer trainer;

  explicit Fixture(uint64_t seed) : data(MakeData(seed)), trainer(Config()) {
    Rng rng(seed);
    std::vector<int32_t> few = FewShotLabels(data, 4, rng);
    EXPECT_TRUE(trainer
                    .SetSupervision(few, data.protected_set,
                                    data.num_classes)
                    .ok());
    EXPECT_TRUE(trainer.Fit(data.graph, rng).ok());
  }

  static FairGenConfig Config() {
    FairGenConfig cfg;
    cfg.num_walks = 80;
    cfg.self_paced_cycles = 2;
    cfg.generator_epochs = 1;
    cfg.embedding_dim = 16;
    cfg.ffn_dim = 24;
    cfg.gen_transition_multiplier = 3.0;
    return cfg;
  }

  static LabeledGraph MakeData(uint64_t seed) {
    SyntheticGraphConfig cfg;
    cfg.num_nodes = 100;
    cfg.num_edges = 500;
    cfg.num_classes = 3;
    cfg.protected_size = 15;
    Rng rng(seed);
    auto data = GenerateSynthetic(cfg, rng);
    EXPECT_TRUE(data.ok());
    return data.MoveValueUnsafe();
  }
};

TEST(ScoreEdgesTest, DefaultIsNotImplemented) {
  ErdosRenyiGenerator er;
  Rng rng(1);
  auto scored = er.ScoreEdges(rng);
  EXPECT_FALSE(scored.ok());
  EXPECT_TRUE(scored.status().IsNotImplemented());
}

TEST(ScoreEdgesTest, FairGenRequiresFit) {
  FairGenTrainer trainer(Fixture::Config());
  Rng rng(2);
  EXPECT_TRUE(trainer.ScoreEdges(rng).status().IsFailedPrecondition());
}

TEST(ScoreEdgesTest, FairGenProducesPositiveScores) {
  Fixture f(3);
  Rng rng(3);
  auto scored = f.trainer.ScoreEdges(rng);
  ASSERT_TRUE(scored.ok());
  EXPECT_GT(scored->size(), 50u);
  for (const auto& [edge, score] : *scored) {
    EXPECT_LT(edge.u, edge.v);
    EXPECT_LT(edge.v, f.data.graph.num_nodes());
    EXPECT_GT(score, 0.0);
  }
}

TEST(ScoreEdgesTest, NetGanProducesScores) {
  Fixture f(4);
  NetGanConfig cfg;
  cfg.train.num_walks = 50;
  cfg.train.epochs = 1;
  cfg.train.gen_transition_multiplier = 2.0;
  cfg.dim = 12;
  cfg.hidden_dim = 12;
  NetGanGenerator gen(cfg);
  Rng rng(4);
  ASSERT_TRUE(gen.Fit(f.data.graph, rng).ok());
  auto scored = gen.ScoreEdges(rng);
  ASSERT_TRUE(scored.ok());
  EXPECT_GT(scored->size(), 10u);
}

TEST(GenerateWithCriteriaTest, NoneMatchesTopMThresholding) {
  Fixture f(5);
  // Identical RNG state -> identical sampled walks -> with all criteria
  // off, assembly must coincide with plain top-m.
  Rng rng_a(42);
  Rng rng_b(42);
  AssemblerCriteria none{false, false};
  auto via_criteria = f.trainer.GenerateWithCriteria(none, rng_a);
  ASSERT_TRUE(via_criteria.ok());
  auto scored = f.trainer.ScoreEdges(rng_b);
  ASSERT_TRUE(scored.ok());
  EdgeScoreAccumulator acc(f.data.graph.num_nodes());
  for (const auto& [edge, score] : *scored) {
    acc.AddEdge(edge.u, edge.v, score);
  }
  auto top = acc.BuildTopEdges(f.data.graph.num_edges());
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(via_criteria->ToEdgeList(), top->ToEdgeList());
}

TEST(GenerateWithCriteriaTest, VolumeCriterionImprovesProtectedVolume) {
  Fixture f(6);
  Rng rng_a(9);
  Rng rng_b(9);
  auto with_volume =
      f.trainer.GenerateWithCriteria({true, false}, rng_a);
  auto without =
      f.trainer.GenerateWithCriteria({false, false}, rng_b);
  ASSERT_TRUE(with_volume.ok());
  ASSERT_TRUE(without.ok());
  uint64_t target = f.data.graph.Volume(f.data.protected_set);
  uint64_t vol_with = with_volume->Volume(f.data.protected_set);
  uint64_t vol_without = without->Volume(f.data.protected_set);
  // The criterion can only move the volume towards (or past) the target.
  EXPECT_GE(vol_with, vol_without);
  // Sane magnitude only: phase C fills the edge budget with no volume cap,
  // so the overshoot past the target is stochastic (seed-dependent).
  EXPECT_LE(vol_with <= target ? target - vol_with : vol_with - target,
            2 * target);
}

TEST(GenerateWithCriteriaTest, CoverageCriterionFixesIsolatedNodes) {
  Fixture f(7);
  Rng rng_a(11);
  Rng rng_b(11);
  auto with_coverage =
      f.trainer.GenerateWithCriteria({false, true}, rng_a);
  auto without =
      f.trainer.GenerateWithCriteria({false, false}, rng_b);
  ASSERT_TRUE(with_coverage.ok());
  ASSERT_TRUE(without.ok());
  uint32_t isolated_with = 0;
  uint32_t isolated_without = 0;
  for (NodeId v = 0; v < f.data.graph.num_nodes(); ++v) {
    if (f.data.graph.Degree(v) == 0) continue;
    if (with_coverage->Degree(v) == 0) ++isolated_with;
    if (without->Degree(v) == 0) ++isolated_without;
  }
  EXPECT_EQ(isolated_with, 0u);
  EXPECT_GE(isolated_without, isolated_with);
}

class AssemblerCriteriaSweep
    : public testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(AssemblerCriteriaSweep, AlwaysMatchesEdgeBudgetAndNodeSet) {
  auto [volume, coverage] = GetParam();
  Fixture f(20 + (volume ? 1 : 0) + (coverage ? 2 : 0));
  Rng rng(13);
  auto generated =
      f.trainer.GenerateWithCriteria({volume, coverage}, rng);
  ASSERT_TRUE(generated.ok());
  EXPECT_EQ(generated->num_nodes(), f.data.graph.num_nodes());
  EXPECT_LE(generated->num_edges(), f.data.graph.num_edges());
  EXPECT_GE(generated->num_edges(), f.data.graph.num_edges() * 9 / 10);
}

INSTANTIATE_TEST_SUITE_P(
    Criteria, AssemblerCriteriaSweep,
    testing::Combine(testing::Bool(), testing::Bool()));

}  // namespace
}  // namespace fairgen
