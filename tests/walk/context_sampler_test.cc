#include "walk/context_sampler.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace fairgen {
namespace {

LabeledGraph MakeData(uint64_t seed) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 150;
  cfg.num_edges = 900;
  cfg.num_classes = 3;
  cfg.intra_class_affinity = 10.0;
  Rng rng(seed);
  auto data = GenerateSynthetic(cfg, rng);
  EXPECT_TRUE(data.ok());
  return data.MoveValueUnsafe();
}

ContextSamplerConfig DefaultConfig() {
  ContextSamplerConfig cfg;
  cfg.walk_length = 8;
  cfg.general_ratio = 0.5;
  return cfg;
}

TEST(ContextSamplerTest, StartsUnlabeled) {
  LabeledGraph data = MakeData(1);
  ContextSampler sampler(data.graph, DefaultConfig(), 3);
  EXPECT_FALSE(sampler.has_labeled_nodes());
  EXPECT_EQ(sampler.num_labeled(), 0u);
}

TEST(ContextSamplerTest, SetLabelsValidates) {
  LabeledGraph data = MakeData(2);
  ContextSampler sampler(data.graph, DefaultConfig(), 3);
  EXPECT_FALSE(sampler.SetLabels({0, 1}).ok());  // wrong size
  std::vector<int32_t> bad(data.graph.num_nodes(), kUnlabeled);
  bad[0] = 7;  // out of range class
  EXPECT_FALSE(sampler.SetLabels(bad).ok());
  std::vector<int32_t> good(data.graph.num_nodes(), kUnlabeled);
  good[0] = 2;
  EXPECT_TRUE(sampler.SetLabels(good).ok());
  EXPECT_EQ(sampler.num_labeled(), 1u);
  EXPECT_EQ(sampler.ClassNodes(2).size(), 1u);
}

TEST(ContextSamplerTest, UnlabeledSamplerFallsBackToGeneral) {
  LabeledGraph data = MakeData(3);
  ContextSamplerConfig cfg = DefaultConfig();
  cfg.general_ratio = 0.0;  // would always pick label-informed...
  ContextSampler sampler(data.graph, cfg, 3);
  Rng rng(3);
  // ...but with no labels it must not crash and must return a full walk.
  Walk w = sampler.Sample(rng);
  EXPECT_EQ(w.size(), cfg.walk_length);
}

TEST(ContextSamplerTest, WalksHaveConfiguredLength) {
  LabeledGraph data = MakeData(4);
  ContextSampler sampler(data.graph, DefaultConfig(), 3);
  ASSERT_TRUE(sampler.SetLabels(data.labels).ok());
  Rng rng(4);
  for (const Walk& w : sampler.SampleBatch(25, rng)) {
    EXPECT_EQ(w.size(), 8u);
  }
}

TEST(ContextSamplerTest, LabelInformedWalkRequiresLabeledClass) {
  LabeledGraph data = MakeData(5);
  ContextSampler sampler(data.graph, DefaultConfig(), 3);
  Rng rng(5);
  auto walk = sampler.SampleLabelInformed(0, rng);
  EXPECT_FALSE(walk.ok());
  EXPECT_TRUE(walk.status().IsFailedPrecondition());
  EXPECT_FALSE(sampler.SampleLabelInformed(9, rng).ok());
}

TEST(ContextSamplerTest, LabelInformedWalkStartsAtLabeledNode) {
  LabeledGraph data = MakeData(6);
  ContextSampler sampler(data.graph, DefaultConfig(), 3);
  ASSERT_TRUE(sampler.SetLabels(data.labels).ok());
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    auto walk = sampler.SampleLabelInformed(1, rng);
    ASSERT_TRUE(walk.ok());
    EXPECT_EQ(data.labels[walk->front()], 1);
  }
}

TEST(ContextSamplerTest, LabelInformedWalkMostlyStaysInClass) {
  // With fully labeled planted communities, the tiered preference should
  // keep the vast majority of visited nodes in the start class.
  LabeledGraph data = MakeData(7);
  ContextSampler sampler(data.graph, DefaultConfig(), 3);
  ASSERT_TRUE(sampler.SetLabels(data.labels).ok());
  Rng rng(7);
  int in_class = 0;
  int total = 0;
  for (int trial = 0; trial < 100; ++trial) {
    auto walk = sampler.SampleLabelInformed(0, rng);
    ASSERT_TRUE(walk.ok());
    for (NodeId v : *walk) {
      ++total;
      if (data.labels[v] == 0) ++in_class;
    }
  }
  EXPECT_GT(static_cast<double>(in_class) / total, 0.95);
}

TEST(ContextSamplerTest, GeneralRatioOneNeverUsesLabels) {
  LabeledGraph data = MakeData(8);
  ContextSamplerConfig cfg = DefaultConfig();
  cfg.general_ratio = 1.0;
  ContextSampler sampler(data.graph, cfg, 3);
  ASSERT_TRUE(sampler.SetLabels(data.labels).ok());
  Rng rng(8);
  // Start nodes of general walks follow the walker's start distribution
  // (positive-degree uniform); with labels from all classes the class of
  // start nodes should NOT be concentrated.
  std::vector<int> class_counts(3, 0);
  for (int trial = 0; trial < 300; ++trial) {
    Walk w = sampler.Sample(rng);
    ++class_counts[data.labels[w.front()]];
  }
  for (int c : class_counts) {
    EXPECT_GT(c, 40);  // all classes represented
  }
}

TEST(ContextSamplerTest, ClassBalancedSamplingWithRatioZero) {
  // With r=0 every walk is label-informed, sampled uniformly over classes.
  LabeledGraph data = MakeData(9);
  ContextSamplerConfig cfg = DefaultConfig();
  cfg.general_ratio = 0.0;
  ContextSampler sampler(data.graph, cfg, 3);
  // Label only a handful per class (few-shot).
  Rng seed_rng(9);
  std::vector<int32_t> few = FewShotLabels(data, 3, seed_rng);
  ASSERT_TRUE(sampler.SetLabels(few).ok());
  Rng rng(10);
  std::vector<int> class_counts(3, 0);
  constexpr int kTrials = 3000;
  for (int trial = 0; trial < kTrials; ++trial) {
    Walk w = sampler.Sample(rng);
    int32_t start_class = few[w.front()];
    ASSERT_NE(start_class, kUnlabeled);
    ++class_counts[start_class];
  }
  for (int c : class_counts) {
    EXPECT_NEAR(c / static_cast<double>(kTrials), 1.0 / 3.0, 0.05);
  }
}

}  // namespace
}  // namespace fairgen
