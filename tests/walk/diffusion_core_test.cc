#include "walk/diffusion_core.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "graph/subgraph.h"
#include "walk/random_walk.h"

namespace fairgen {
namespace {

LabeledGraph CommunityGraph(uint64_t seed, double affinity = 12.0) {
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 200;
  cfg.num_edges = 1200;
  cfg.num_classes = 4;
  cfg.intra_class_affinity = affinity;
  Rng rng(seed);
  auto data = GenerateSynthetic(cfg, rng);
  EXPECT_TRUE(data.ok());
  return data.MoveValueUnsafe();
}

std::vector<NodeId> ClassNodes(const LabeledGraph& data, int32_t c) {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < data.graph.num_nodes(); ++v) {
    if (data.labels[v] == c) out.push_back(v);
  }
  return out;
}

TEST(DiffusionCoreTest, CoreIsSubsetOfInput) {
  LabeledGraph data = CommunityGraph(1);
  std::vector<NodeId> community = ClassNodes(data, 0);
  auto core = ComputeDiffusionCore(data.graph, community, {0.9, 2});
  ASSERT_TRUE(core.ok());
  std::vector<uint8_t> mask = NodeMask(data.graph.num_nodes(), community);
  for (NodeId v : core->core) {
    EXPECT_TRUE(mask[v]);
  }
  EXPECT_LE(core->core.size(), community.size());
}

TEST(DiffusionCoreTest, TightCommunityHasNonEmptyCore) {
  LabeledGraph data = CommunityGraph(2, /*affinity=*/15.0);
  std::vector<NodeId> community = ClassNodes(data, 1);
  auto core = ComputeDiffusionCore(data.graph, community, {0.9, 2});
  ASSERT_TRUE(core.ok());
  EXPECT_GT(core->core.size(), 0u);
}

TEST(DiffusionCoreTest, EscapeProbabilitiesAlignedAndBounded) {
  LabeledGraph data = CommunityGraph(3);
  std::vector<NodeId> community = ClassNodes(data, 2);
  auto core = ComputeDiffusionCore(data.graph, community, {0.5, 3});
  ASSERT_TRUE(core.ok());
  ASSERT_EQ(core->escape_probability.size(), community.size());
  for (double e : core->escape_probability) {
    EXPECT_GE(e, -1e-9);
    EXPECT_LE(e, 1.0 + 1e-9);
  }
}

TEST(DiffusionCoreTest, MembershipMatchesThreshold) {
  LabeledGraph data = CommunityGraph(4);
  std::vector<NodeId> community = ClassNodes(data, 0);
  DiffusionCoreOptions opts{0.8, 2};
  auto core = ComputeDiffusionCore(data.graph, community, opts);
  ASSERT_TRUE(core.ok());
  double threshold = opts.delta * core->conductance;
  std::vector<uint8_t> in_core =
      NodeMask(data.graph.num_nodes(), core->core);
  for (size_t i = 0; i < community.size(); ++i) {
    bool expected = core->escape_probability[i] < threshold;
    EXPECT_EQ(static_cast<bool>(in_core[community[i]]), expected);
  }
}

TEST(DiffusionCoreTest, LargerDeltaGivesLargerCore) {
  LabeledGraph data = CommunityGraph(5);
  std::vector<NodeId> community = ClassNodes(data, 1);
  auto small = ComputeDiffusionCore(data.graph, community, {0.3, 2});
  auto large = ComputeDiffusionCore(data.graph, community, {0.95, 2});
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LE(small->core.size(), large->core.size());
}

TEST(DiffusionCoreTest, MoreStepsShrinkCore) {
  LabeledGraph data = CommunityGraph(6);
  std::vector<NodeId> community = ClassNodes(data, 0);
  auto short_t = ComputeDiffusionCore(data.graph, community, {0.9, 1});
  auto long_t = ComputeDiffusionCore(data.graph, community, {0.9, 5});
  ASSERT_TRUE(short_t.ok());
  ASSERT_TRUE(long_t.ok());
  EXPECT_GE(short_t->core.size(), long_t->core.size());
}

TEST(DiffusionCoreTest, InvalidParamsRejected) {
  LabeledGraph data = CommunityGraph(7);
  std::vector<NodeId> community = ClassNodes(data, 0);
  EXPECT_FALSE(ComputeDiffusionCore(data.graph, community, {0.0, 2}).ok());
  EXPECT_FALSE(ComputeDiffusionCore(data.graph, community, {1.0, 2}).ok());
  EXPECT_FALSE(ComputeDiffusionCore(data.graph, community, {0.5, 0}).ok());
}

TEST(EscapeProbabilityTest, MatchesDiffusionCoreValues) {
  LabeledGraph data = CommunityGraph(8);
  std::vector<NodeId> community = ClassNodes(data, 3);
  auto core = ComputeDiffusionCore(data.graph, community, {0.5, 3});
  ASSERT_TRUE(core.ok());
  for (size_t i = 0; i < std::min<size_t>(5, community.size()); ++i) {
    auto escape = EscapeProbability(data.graph, community, community[i], 3);
    ASSERT_TRUE(escape.ok());
    EXPECT_NEAR(*escape, core->escape_probability[i], 1e-9);
  }
}

TEST(EscapeProbabilityTest, SourceOutsideSetRejected) {
  LabeledGraph data = CommunityGraph(9);
  std::vector<NodeId> community = ClassNodes(data, 0);
  std::vector<NodeId> other = ClassNodes(data, 1);
  EXPECT_FALSE(EscapeProbability(data.graph, community, other[0], 2).ok());
}

TEST(Lemma21BoundTest, Formula) {
  EXPECT_NEAR(Lemma21Bound(10, 0.5, 0.1), 0.5, 1e-12);
  EXPECT_EQ(Lemma21Bound(10, 0.9, 0.5), 0.0);  // clamped at zero
  EXPECT_NEAR(Lemma21Bound(1, 0.1, 0.1), 0.99, 1e-12);
}

// Empirical validation of Lemma 2.1: T-length lazy walks started from
// diffusion-core members stay inside S with probability at least
// 1 - T*delta*phi(S). We verify with the *non-lazy* uniform walker too
// conservative a check, so we simulate the lazy walk directly.
class Lemma21EmpiricalTest : public testing::TestWithParam<uint32_t> {};

TEST_P(Lemma21EmpiricalTest, BoundHoldsEmpirically) {
  const uint32_t walk_length = GetParam();
  LabeledGraph data = CommunityGraph(10 + walk_length, 15.0);
  std::vector<NodeId> community = ClassNodes(data, 0);
  DiffusionCoreOptions opts{0.9, 2};
  auto core = ComputeDiffusionCore(data.graph, community, opts);
  ASSERT_TRUE(core.ok());
  if (core->core.empty()) GTEST_SKIP() << "empty core for this seed";

  double bound = Lemma21Bound(walk_length, opts.delta, core->conductance);
  std::vector<uint8_t> mask = NodeMask(data.graph.num_nodes(), community);

  Rng rng(99 + walk_length);
  constexpr int kTrials = 4000;
  int stayed = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    NodeId cur = core->core[rng.UniformU32(
        static_cast<uint32_t>(core->core.size()))];
    bool inside = true;
    for (uint32_t t = 0; t < walk_length && inside; ++t) {
      // Lazy step: stay with probability 1/2.
      if (rng.Bernoulli(0.5)) continue;
      auto nbrs = data.graph.Neighbors(cur);
      if (nbrs.empty()) continue;
      cur = nbrs[rng.UniformU32(static_cast<uint32_t>(nbrs.size()))];
      inside = mask[cur];
    }
    if (inside) ++stayed;
  }
  double stay_rate = static_cast<double>(stayed) / kTrials;
  // Allow 3-sigma sampling slack below the bound.
  double slack = 3.0 * std::sqrt(0.25 / kTrials);
  EXPECT_GE(stay_rate, bound - slack)
      << "bound " << bound << " violated at T=" << walk_length;
}

INSTANTIATE_TEST_SUITE_P(WalkLengths, Lemma21EmpiricalTest,
                         testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace fairgen
