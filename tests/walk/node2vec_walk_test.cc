#include "walk/node2vec_walk.h"

#include <gtest/gtest.h>

#include "generators/er.h"

namespace fairgen {
namespace {

TEST(Node2VecWalkerTest, WalkLengthAndAdjacency) {
  Rng rng(1);
  auto g = SampleErdosRenyi(50, 200, rng);
  ASSERT_TRUE(g.ok());
  Node2VecWalker walker(*g, {1.0, 1.0});
  for (int trial = 0; trial < 20; ++trial) {
    Walk w = walker.SampleWalk(0, 10, rng);
    EXPECT_EQ(w.size(), 10u);
    for (size_t i = 0; i + 1 < w.size(); ++i) {
      EXPECT_TRUE(g->HasEdge(w[i], w[i + 1]) || w[i] == w[i + 1]);
    }
  }
}

TEST(Node2VecWalkerTest, LengthOneWalkIsJustStart) {
  Rng rng(2);
  auto g = SampleErdosRenyi(10, 20, rng);
  ASSERT_TRUE(g.ok());
  Node2VecWalker walker(*g, {});
  Walk w = walker.SampleWalk(3, 1, rng);
  EXPECT_EQ(w, (Walk{3}));
}

TEST(Node2VecWalkerTest, DeadEndAbsorbs) {
  auto g = Graph::FromEdges(3, {{0, 1}});
  ASSERT_TRUE(g.ok());
  Rng rng(3);
  Node2VecWalker walker(*g, {});
  Walk w = walker.SampleWalk(2, 4, rng);
  EXPECT_EQ(w, (Walk{2, 2, 2, 2}));
}

TEST(Node2VecWalkerTest, LowPEncouragesBacktracking) {
  // Path graph 0-1-2: from 1 (arrived from 0), low p should return to 0
  // far more often than high p.
  auto g = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(g.ok());
  auto backtrack_rate = [&](double p, double q, uint64_t seed) {
    Rng rng(seed);
    Node2VecWalker walker(*g, {p, q});
    int backtracks = 0;
    int total = 0;
    for (int i = 0; i < 20000; ++i) {
      Walk w = walker.SampleWalk(0, 3, rng);
      // w = {0, 1, ?}; the third step chooses between 0 (backtrack, weight
      // 1/p) and 2 (explore, weight 1/q since 2 is not adjacent to 0).
      if (w[1] != 1) continue;
      ++total;
      if (w[2] == 0) ++backtracks;
    }
    EXPECT_GT(total, 0);
    return static_cast<double>(backtracks) / total;
  };
  double low_p_rate = backtrack_rate(0.1, 1.0, 4);
  double high_p_rate = backtrack_rate(10.0, 1.0, 5);
  // Expected: (1/p) / (1/p + 1/q) = 0.909 vs 0.091.
  EXPECT_NEAR(low_p_rate, 0.909, 0.03);
  EXPECT_NEAR(high_p_rate, 0.091, 0.03);
}

TEST(Node2VecWalkerTest, LowQEncouragesExploration) {
  // Lollipop: triangle {0,1,2} plus pendant 2-3. From 1 arrived via 0:
  // neighbor 0 has weight 1/p, neighbor 2 (adjacent to 0) has weight 1.
  auto g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  ASSERT_TRUE(g.ok());
  // With (p=1, q) the DFS-ness only matters from node 2 onwards; verify
  // that from 2 (arrived via 1), node 3 (not adjacent to 1) gets weight
  // 1/q relative to 0 (adjacent, weight 1) and 1 (backtrack, 1/p).
  auto explore_rate = [&](double q, uint64_t seed) {
    Rng rng(seed);
    Node2VecWalker walker(*g, {1.0, q});
    int explored = 0;
    int total = 0;
    for (int i = 0; i < 30000; ++i) {
      Walk w = walker.SampleWalk(1, 3, rng);
      if (w[1] != 2) continue;
      ++total;
      if (w[2] == 3) ++explored;
    }
    EXPECT_GT(total, 0);
    return static_cast<double>(explored) / total;
  };
  // weights from 2 (prev=1): {1: 1/p=1, 0: 1, 3: 1/q}.
  EXPECT_GT(explore_rate(0.2, 6), explore_rate(5.0, 7) + 0.3);
}

TEST(Node2VecWalkerTest, UnitParamsMatchFirstOrderDistribution) {
  // With p=q=1 every neighbor is equally likely regardless of history.
  auto g = Graph::FromEdges(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}});
  ASSERT_TRUE(g.ok());
  Rng rng(8);
  Node2VecWalker walker(*g, {1.0, 1.0});
  std::vector<int> counts(4, 0);
  constexpr int kTrials = 30000;
  int considered = 0;
  for (int i = 0; i < kTrials; ++i) {
    Walk w = walker.SampleWalk(1, 3, rng);
    if (w[1] != 0) continue;  // condition on moving 1 -> 0
    ++considered;
    ++counts[w[2]];
  }
  // From 0 (neighbors 1,2,3) all should be ~1/3.
  for (int v : {1, 2, 3}) {
    EXPECT_NEAR(counts[v] / static_cast<double>(considered), 1.0 / 3.0,
                0.03);
  }
}

TEST(Node2VecWalkerTest, SampleWalksBatches) {
  Rng rng(9);
  auto g = SampleErdosRenyi(30, 80, rng);
  ASSERT_TRUE(g.ok());
  Node2VecWalker walker(*g, {0.5, 2.0});
  std::vector<Walk> walks = walker.SampleWalks(12, 7, rng);
  EXPECT_EQ(walks.size(), 12u);
  for (const Walk& w : walks) EXPECT_EQ(w.size(), 7u);
}

TEST(Node2VecWalkerDeathTest, RejectsNonPositiveParams) {
  auto g = Graph::FromEdges(2, {{0, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_DEATH(Node2VecWalker(*g, {0.0, 1.0}), "");
}

}  // namespace
}  // namespace fairgen
