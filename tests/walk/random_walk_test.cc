#include "walk/random_walk.h"

#include <gtest/gtest.h>

#include "generators/er.h"
#include "graph/subgraph.h"

namespace fairgen {
namespace {

TEST(RandomWalkerTest, WalkHasRequestedLength) {
  Rng rng(1);
  auto g = SampleErdosRenyi(40, 100, rng);
  ASSERT_TRUE(g.ok());
  RandomWalker walker(*g);
  for (uint32_t len : {1u, 2u, 5u, 10u, 32u}) {
    Walk w = walker.UniformWalk(0, len, rng);
    EXPECT_EQ(w.size(), len);
  }
}

TEST(RandomWalkerTest, ConsecutiveNodesAreAdjacent) {
  Rng rng(2);
  auto g = SampleErdosRenyi(50, 200, rng);
  ASSERT_TRUE(g.ok());
  RandomWalker walker(*g);
  for (int trial = 0; trial < 20; ++trial) {
    Walk w = walker.UniformWalk(walker.SampleStartNode(rng), 12, rng);
    for (size_t i = 0; i + 1 < w.size(); ++i) {
      EXPECT_TRUE(g->HasEdge(w[i], w[i + 1]) || w[i] == w[i + 1]);
    }
  }
}

TEST(RandomWalkerTest, IsolatedNodeAbsorbs) {
  auto g = Graph::FromEdges(3, {{0, 1}});
  ASSERT_TRUE(g.ok());
  Rng rng(3);
  RandomWalker walker(*g);
  Walk w = walker.UniformWalk(2, 5, rng);
  EXPECT_EQ(w, (Walk{2, 2, 2, 2, 2}));
}

TEST(RandomWalkerTest, StartNodeHasPositiveDegree) {
  auto g = Graph::FromEdges(5, {{0, 1}});  // nodes 2,3,4 isolated
  ASSERT_TRUE(g.ok());
  Rng rng(4);
  RandomWalker walker(*g);
  for (int i = 0; i < 50; ++i) {
    NodeId start = walker.SampleStartNode(rng);
    EXPECT_LE(start, 1u);
  }
}

TEST(RandomWalkerTest, SampleUniformWalksCount) {
  Rng rng(5);
  auto g = SampleErdosRenyi(30, 60, rng);
  ASSERT_TRUE(g.ok());
  RandomWalker walker(*g);
  std::vector<Walk> walks = walker.SampleUniformWalks(17, 6, rng);
  EXPECT_EQ(walks.size(), 17u);
  for (const Walk& w : walks) EXPECT_EQ(w.size(), 6u);
}

TEST(RandomWalkerTest, UniformNeighborDistribution) {
  // From the center of a 4-star, each leaf should be hit ~uniformly.
  auto g = Graph::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  ASSERT_TRUE(g.ok());
  Rng rng(6);
  RandomWalker walker(*g);
  std::vector<int> counts(5, 0);
  constexpr int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i) {
    Walk w = walker.UniformWalk(0, 2, rng);
    ++counts[w[1]];
  }
  for (int leaf = 1; leaf <= 4; ++leaf) {
    EXPECT_NEAR(counts[leaf] / static_cast<double>(kTrials), 0.25, 0.02);
  }
}

TEST(MaskedWalkTest, StaysInsideMask) {
  Rng rng(7);
  auto g = SampleErdosRenyi(60, 300, rng);
  ASSERT_TRUE(g.ok());
  std::vector<NodeId> set{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<uint8_t> mask = NodeMask(g->num_nodes(), set);
  RandomWalker walker(*g);
  for (int trial = 0; trial < 50; ++trial) {
    Walk w = walker.MaskedWalk(0, 10, mask, rng);
    for (NodeId v : w) {
      EXPECT_TRUE(mask[v]) << "walk left the mask at " << v;
    }
  }
}

TEST(MaskedWalkTest, StaysPutWhenNoMaskedNeighbor) {
  auto g = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(g.ok());
  Rng rng(8);
  RandomWalker walker(*g);
  std::vector<uint8_t> mask{1, 0, 0};
  Walk w = walker.MaskedWalk(0, 4, mask, rng);
  EXPECT_EQ(w, (Walk{0, 0, 0, 0}));
}

TEST(MaskedWalkDeathTest, RejectsUnmaskedStart) {
  auto g = Graph::FromEdges(2, {{0, 1}});
  ASSERT_TRUE(g.ok());
  Rng rng(9);
  RandomWalker walker(*g);
  std::vector<uint8_t> mask{0, 1};
  EXPECT_DEATH(walker.MaskedWalk(0, 3, mask, rng), "mask");
}

}  // namespace
}  // namespace fairgen
