// Smoke + golden-schema test for the perf-regression harness: runs the
// real bench_pipeline binary at a tiny scale (one repetition, two cheap
// scenarios), validates the emitted BENCH_pipeline.json against the
// checked-in key schema in tests/golden/bench_pipeline_schema.txt, and
// exercises both sides of the --compare gate (self-compare passes, an
// impossibly fast baseline trips the regression exit code).
//
// The binary and schema paths are injected by tests/CMakeLists.txt as the
// FAIRGEN_BENCH_PIPELINE_PATH / FAIRGEN_BENCH_SCHEMA_PATH compile
// definitions. Registered under the `bench-smoke` ctest label.

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/strings.h"

namespace fairgen::bench {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// std::system returns a wait status; the harness's exit codes (0 ok,
// 1 regression, 2 error) live in WEXITSTATUS.
int RunCommand(const std::string& command) {
  int status = std::system(command.c_str());
  if (status == -1 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

class BenchPipelineSmokeTest : public testing::Test {
 protected:
  std::string TempPath(const std::string& suffix) {
    std::string path = testing::TempDir() + "/fairgen_bench_smoke_" + suffix;
    paths_.push_back(path);
    return path;
  }

  std::string BenchCommand(const std::string& extra_flags,
                           const std::string& scenarios =
                               "walk_sampling,assembly") {
    std::string cmd = std::string(FAIRGEN_BENCH_PIPELINE_PATH) +
                      " --scale=0.01 --repetitions=1 --warmup=0 --seed=7 ";
    if (!scenarios.empty()) cmd += "--scenarios=" + scenarios + " ";
    return cmd + extra_flags + " > /dev/null 2>&1";
  }

  void TearDown() override {
    for (const std::string& p : paths_) std::remove(p.c_str());
  }

  std::vector<std::string> paths_;
};

TEST_F(BenchPipelineSmokeTest, EmitsSchemaCompleteResultJson) {
  std::string out_path = TempPath("result.json");
  ASSERT_EQ(RunCommand(BenchCommand("--out=" + out_path)), 0);

  std::string text = ReadFileOrDie(out_path);
  ASSERT_FALSE(text.empty());

  // Every key in the golden schema must be present.
  std::string schema = ReadFileOrDie(FAIRGEN_BENCH_SCHEMA_PATH);
  size_t keys_checked = 0;
  for (const std::string& raw_line : StrSplit(schema, '\n')) {
    std::string_view line = StrTrim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    std::string quoted = "\"" + std::string(line) + "\"";
    EXPECT_NE(text.find(quoted), std::string::npos)
        << "result JSON is missing schema key " << line;
    ++keys_checked;
  }
  EXPECT_GE(keys_checked, 14u) << "schema file looks truncated";

  // Structural checks through the repo's own JSON reader.
  auto doc = json::Parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->GetDouble("schema_version"), 2.0);
  EXPECT_EQ(doc->GetDouble("seed"), 7.0);
  // v2: the process-global peak is a run-level field ...
  EXPECT_GT(doc->GetDouble("peak_rss_bytes", 0.0), 0.0);
  const json::Value* scenarios = doc->Find("scenarios");
  ASSERT_NE(scenarios, nullptr);
  ASSERT_TRUE(scenarios->is_array());
  ASSERT_EQ(scenarios->AsArray().size(), 2u);
  EXPECT_EQ(scenarios->AsArray()[0].GetString("scenario"), "walk_sampling");
  EXPECT_EQ(scenarios->AsArray()[1].GetString("scenario"), "assembly");
  for (const json::Value& s : scenarios->AsArray()) {
    EXPECT_GE(s.GetDouble("median_ms", -1.0), 0.0);
    EXPECT_GT(s.GetDouble("items", 0.0), 0.0);
    // ... and scenarios record their own peak growth, which is legally 0
    // when the scenario fits inside an earlier high-water mark.
    EXPECT_GE(s.GetDouble("rss_delta_bytes", -1.0), 0.0);
    EXPECT_EQ(s.GetDouble("repetitions"), 1.0);
  }
}

TEST_F(BenchPipelineSmokeTest, SelfCompareIsNotARegression) {
  std::string baseline_path = TempPath("baseline.json");
  ASSERT_EQ(RunCommand(BenchCommand("--out=" + baseline_path)), 0);
  std::string out_path = TempPath("candidate.json");
  // Same workload against its own recorded numbers: wall-time jitter is
  // real, so give the gate a generous threshold; the point is the exit
  // code plumbing, not timing stability on a loaded CI box.
  EXPECT_EQ(RunCommand(BenchCommand("--out=" + out_path + " --compare=" +
                                    baseline_path +
                                    " --regress-threshold=100.0")),
            0);
}

TEST_F(BenchPipelineSmokeTest, ImpossiblyFastBaselineTripsTheGate) {
  std::string baseline_path = TempPath("tiny_baseline.json");
  {
    std::ofstream out(baseline_path);
    out << R"({
  "schema_version": 2,
  "peak_rss_bytes": 1,
  "git_rev": "test",
  "seed": 7,
  "threads": 0,
  "scale": 0.01,
  "warmup": 0,
  "repetitions": 1,
  "scenarios": [
    {"scenario": "walk_sampling", "median_ms": 1e-06, "iqr_ms": 0,
     "items": 1, "items_per_s": 1, "rss_delta_bytes": 1, "repetitions": 1},
    {"scenario": "assembly", "median_ms": 1e-06, "iqr_ms": 0,
     "items": 1, "items_per_s": 1, "rss_delta_bytes": 1, "repetitions": 1}
  ]
})";
  }
  std::string out_path = TempPath("regressed.json");
  EXPECT_EQ(RunCommand(BenchCommand("--out=" + out_path + " --compare=" +
                                    baseline_path)),
            1)
      << "a real run can never beat a 1ns baseline; the gate must trip";
}

// An empty --scenarios filter means "run everything": a default run must
// emit one result per scenario, never an empty-but-valid document. (This
// pins a real bug: splitting the empty filter string used to yield one
// empty token, which disabled every scenario.)
TEST_F(BenchPipelineSmokeTest, DefaultRunCoversEveryScenario) {
  std::string out_path = TempPath("default.json");
  ASSERT_EQ(RunCommand(BenchCommand("--out=" + out_path, /*scenarios=*/"")),
            0);
  auto doc = json::Parse(ReadFileOrDie(out_path));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value* scenarios = doc->Find("scenarios");
  ASSERT_NE(scenarios, nullptr);
  ASSERT_TRUE(scenarios->is_array());
  EXPECT_EQ(scenarios->AsArray().size(), 10u)
      << "a run without --scenarios must cover every scenario";
  bool has_overlap = false;
  for (const json::Value& s : scenarios->AsArray()) {
    has_overlap |= s.GetString("scenario", "") == "pipeline_overlap";
  }
  EXPECT_TRUE(has_overlap)
      << "the DAG-executor overlap scenario must run by default";
}

TEST_F(BenchPipelineSmokeTest, UnknownScenarioNameIsAnError) {
  EXPECT_EQ(RunCommand(BenchCommand("--out=" + TempPath("typo.json"),
                                    "walk_sampling,no_such_scenario")),
            2);
}

// Malformed numeric flags must be exit-2 errors in both the harness's own
// parser (--warmup/--repetitions) and the shared bench_util parser
// (--seed/--threads/...) — the old null-endptr strtoul calls silently
// parsed these to 0 or wrapped negatives to huge values.
TEST_F(BenchPipelineSmokeTest, MalformedNumericFlagsAreErrors) {
  EXPECT_EQ(RunCommand(BenchCommand("--out= --warmup=abc")), 2);
  EXPECT_EQ(RunCommand(BenchCommand("--out= --repetitions=2x")), 2);
  EXPECT_EQ(RunCommand(BenchCommand("--out= --seed=junk")), 2);
  EXPECT_EQ(RunCommand(BenchCommand("--out= --threads=-2")), 2);
  EXPECT_EQ(RunCommand(BenchCommand(
                "--out= --seed=99999999999999999999999")),
            2);
}

TEST_F(BenchPipelineSmokeTest, MissingBaselineIsAnError) {
  EXPECT_EQ(RunCommand(BenchCommand(
                "--out=" + TempPath("err.json") +
                " --compare=/nonexistent/fairgen_baseline.json")),
            2);
}

}  // namespace
}  // namespace fairgen::bench
