// Sanity checks on the *committed* BENCH_pipeline.json baseline, parsed
// directly with the repo's JSON reader (FAIRGEN_BENCH_BASELINE_PATH is
// injected by tests/CMakeLists.txt). A baseline whose IQR exceeds its
// median was recorded from an unstable run — its --compare verdicts are
// noise — so re-record it (bench_pipeline --out=BENCH_pipeline.json)
// instead of loosening these bounds.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/json.h"

namespace fairgen::bench {
namespace {

json::Value LoadBaselineOrDie() {
  std::ifstream in(FAIRGEN_BENCH_BASELINE_PATH);
  EXPECT_TRUE(in.is_open()) << "cannot open " << FAIRGEN_BENCH_BASELINE_PATH;
  std::stringstream buf;
  buf << in.rdbuf();
  auto doc = json::Parse(buf.str());
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return doc.MoveValueUnsafe();
}

TEST(BenchBaselineSanityTest, SchemaVersionIsCurrent) {
  json::Value doc = LoadBaselineOrDie();
  EXPECT_EQ(doc.GetDouble("schema_version"), 2.0)
      << "committed baseline lags the harness schema; re-record it";
  EXPECT_GT(doc.GetDouble("peak_rss_bytes", 0.0), 0.0);
}

TEST(BenchBaselineSanityTest, EveryScenarioIqrWithinMedian) {
  json::Value doc = LoadBaselineOrDie();
  const json::Value* scenarios = doc.Find("scenarios");
  ASSERT_NE(scenarios, nullptr);
  ASSERT_TRUE(scenarios->is_array());
  ASSERT_FALSE(scenarios->AsArray().empty());
  for (const json::Value& s : scenarios->AsArray()) {
    const std::string name = s.GetString("scenario", "?");
    const double median = s.GetDouble("median_ms", -1.0);
    const double iqr = s.GetDouble("iqr_ms", -1.0);
    ASSERT_GT(median, 0.0) << name;
    ASSERT_GE(iqr, 0.0) << name;
    EXPECT_LE(iqr, median)
        << name << ": recorded IQR exceeds the median — the baseline was "
        << "captured from an unstable run and must be re-recorded";
  }
}

TEST(BenchBaselineSanityTest, MicroSubstrateScenariosAreTracked) {
  json::Value doc = LoadBaselineOrDie();
  const json::Value* scenarios = doc.Find("scenarios");
  ASSERT_NE(scenarios, nullptr);
  bool has_matmul = false, has_alias = false;
  for (const json::Value& s : scenarios->AsArray()) {
    const std::string name = s.GetString("scenario", "");
    has_matmul |= name == "micro_substrates_matmul";
    has_alias |= name == "micro_substrates_alias";
  }
  EXPECT_TRUE(has_matmul);
  EXPECT_TRUE(has_alias);
}

TEST(BenchBaselineSanityTest, PipelineOverlapScenarioIsTracked) {
  json::Value doc = LoadBaselineOrDie();
  const json::Value* scenarios = doc.Find("scenarios");
  ASSERT_NE(scenarios, nullptr);
  bool has_overlap = false;
  for (const json::Value& s : scenarios->AsArray()) {
    has_overlap |= s.GetString("scenario", "") == "pipeline_overlap";
  }
  EXPECT_TRUE(has_overlap)
      << "the DAG-executor overlap scenario is missing from the committed "
      << "baseline; re-record with bench_pipeline --out=BENCH_pipeline.json";
}

}  // namespace
}  // namespace fairgen::bench
