// Regression-attribution smoke: runs the real bench_pipeline binary on a
// tiny scenario with --compare + --attr-out (and the sampling profiler
// on), then asserts the attribution JSON parses and carries the
// documented schema — the machine-readable half of "the exit code names
// code locations, not just scenario names".
//
// The binary path is injected by tests/CMakeLists.txt as the
// FAIRGEN_BENCH_PIPELINE_PATH compile definition. Registered under the
// `bench-attr-smoke` ctest label.

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"

namespace fairgen::bench {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int RunCommand(const std::string& command) {
  int status = std::system(command.c_str());
  if (status == -1 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

class BenchAttrSmokeTest : public testing::Test {
 protected:
  std::string TempPath(const std::string& suffix) {
    std::string path = testing::TempDir() + "/fairgen_bench_attr_" + suffix;
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& p : paths_) std::remove(p.c_str());
  }

  std::vector<std::string> paths_;
};

TEST_F(BenchAttrSmokeTest, AttrOutEmitsSchemaCompleteAttributionJson) {
  // Record a baseline, then self-compare with --attr-out and the
  // profiler sampling. Self-comparison keeps the run fast and makes no
  // assumption about which rows regress — the schema must hold either
  // way (status is "ok" or "REGRESSED" per row, "new" never appears in a
  // self-compare).
  std::string base_cmd = std::string(FAIRGEN_BENCH_PIPELINE_PATH) +
                         " --scale=0.01 --repetitions=1 --warmup=0"
                         " --seed=7 --scenarios=walk_sampling,assembly ";
  std::string baseline = TempPath("baseline.json");
  ASSERT_EQ(RunCommand(base_cmd + "--out=" + baseline +
                       " > /dev/null 2>&1"),
            0);

  std::string attr = TempPath("attr.json");
  std::string out = TempPath("candidate.json");
  ASSERT_EQ(RunCommand(base_cmd + "--out=" + out + " --compare=" + baseline +
                       " --attr-out=" + attr +
                       " --regress-threshold=100.0 --profile-hz=997"
                       " > /dev/null 2>&1"),
            0);

  auto doc = json::Parse(ReadFileOrDie(attr));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->GetDouble("schema_version", 0), 1.0);
  ASSERT_NE(doc->Find("profiled"), nullptr);
  ASSERT_NE(doc->Find("prof_samples"), nullptr);
  EXPECT_GE(doc->GetDouble("prof_samples", -1), 0.0);

  const json::Value* scenarios = doc->Find("scenarios");
  ASSERT_NE(scenarios, nullptr);
  ASSERT_TRUE(scenarios->is_array());
  ASSERT_EQ(scenarios->AsArray().size(), 2u);
  for (const json::Value& s : scenarios->AsArray()) {
    EXPECT_FALSE(s.GetString("scenario", "").empty());
    EXPECT_GE(s.GetDouble("current_ms", -1), 0.0);
    ASSERT_NE(s.Find("baseline_ms"), nullptr);
    ASSERT_NE(s.Find("delta_pct"), nullptr);
    const std::string status = s.GetString("status", "");
    EXPECT_TRUE(status == "ok" || status == "REGRESSED") << status;
    EXPECT_GE(s.GetDouble("samples", -1), 0.0);
    const json::Value* symbols = s.Find("top_symbols");
    ASSERT_NE(symbols, nullptr);
    ASSERT_TRUE(symbols->is_array());
    for (const json::Value& sym : symbols->AsArray()) {
      EXPECT_FALSE(sym.GetString("symbol", "").empty());
      EXPECT_GT(sym.GetDouble("samples", 0), 0.0);
      ASSERT_NE(sym.Find("pct"), nullptr);
    }
    const json::Value* spans = s.Find("top_spans");
    ASSERT_NE(spans, nullptr);
    ASSERT_TRUE(spans->is_array());
    for (const json::Value& span : spans->AsArray()) {
      EXPECT_FALSE(span.GetString("name", "").empty());
      EXPECT_GT(span.GetDouble("wall_ns", 0), 0.0);
      EXPECT_GT(span.GetDouble("count", 0), 0.0);
    }
  }
}

TEST_F(BenchAttrSmokeTest, AttrOutWithoutCompareIsAnError) {
  EXPECT_EQ(RunCommand(std::string(FAIRGEN_BENCH_PIPELINE_PATH) +
                       " --attr-out=" + TempPath("orphan.json") +
                       " > /dev/null 2>&1"),
            2);
}

}  // namespace
}  // namespace fairgen::bench
