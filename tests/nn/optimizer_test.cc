#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/ops.h"

namespace fairgen::nn {
namespace {

// Minimizes f(x) = ||x - target||^2 with the given optimizer; returns the
// final distance to the target.
template <typename Optim>
float MinimizeQuadratic(Optim& optim, const Var& x, const Tensor& target,
                        int steps) {
  Var t = MakeConstant(target);
  for (int i = 0; i < steps; ++i) {
    optim.ZeroGrad();
    Var loss = MeanAll(Square(Sub(x, t)));
    Backward(loss);
    optim.Step();
  }
  float dist = 0.0f;
  for (size_t i = 0; i < x->value.size(); ++i) {
    float d = x->value.data()[i] - target.data()[i];
    dist += d * d;
  }
  return std::sqrt(dist);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Rng rng(1);
  Var x = MakeParameter(Tensor::Randn(2, 3, 1.0f, rng));
  Tensor target(2, 3, 0.7f);
  Sgd sgd({x}, 0.3f);
  EXPECT_LT(MinimizeQuadratic(sgd, x, target, 100), 1e-3f);
}

TEST(SgdTest, MomentumAcceleratesConvergence) {
  Rng rng(2);
  Tensor init = Tensor::Randn(2, 3, 1.0f, rng);
  Tensor target(2, 3, -0.4f);

  Var plain_x = MakeParameter(init);
  Sgd plain({plain_x}, 0.05f);
  float plain_dist = MinimizeQuadratic(plain, plain_x, target, 40);

  Var mom_x = MakeParameter(init);
  Sgd momentum({mom_x}, 0.05f, 0.9f);
  float mom_dist = MinimizeQuadratic(momentum, mom_x, target, 40);

  EXPECT_LT(mom_dist, plain_dist);
}

TEST(SgdTest, WeightDecayShrinksParameters) {
  Var x = MakeParameter(Tensor(1, 4, 1.0f));
  Sgd sgd({x}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  // Zero gradient: only decay acts.
  sgd.ZeroGrad();
  sgd.Step();
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x->value.data()[i], 1.0f - 0.1f * 0.5f, 1e-6);
  }
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Rng rng(3);
  Var x = MakeParameter(Tensor::Randn(3, 3, 2.0f, rng));
  Tensor target(3, 3, 1.5f);
  Adam adam({x}, 0.1f);
  EXPECT_LT(MinimizeQuadratic(adam, x, target, 300), 1e-2f);
}

TEST(AdamTest, HandlesIllConditionedScales) {
  // One coordinate's gradient is 100x the other's; Adam normalizes per
  // coordinate so both should converge.
  Var x = MakeParameter(Tensor(1, 2, 1.0f));
  Var scale = MakeConstant(Tensor(1, 2, std::vector<float>{10.0f, 0.1f}));
  Adam adam({x}, 0.05f);
  for (int i = 0; i < 400; ++i) {
    adam.ZeroGrad();
    Var loss = MeanAll(Square(Mul(x, scale)));
    Backward(loss);
    adam.Step();
  }
  EXPECT_NEAR(x->value.at(0, 0), 0.0f, 1e-2);
  EXPECT_NEAR(x->value.at(0, 1), 0.0f, 0.2);
}

TEST(OptimizerTest, ClipGradNormScalesDown) {
  Var x = MakeParameter(Tensor(1, 2));
  Sgd sgd({x}, 1.0f);
  sgd.ZeroGrad();
  x->grad.at(0, 0) = 3.0f;
  x->grad.at(0, 1) = 4.0f;  // norm 5
  double pre = sgd.ClipGradNorm(1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(x->grad.at(0, 0), 0.6f, 1e-5);
  EXPECT_NEAR(x->grad.at(0, 1), 0.8f, 1e-5);
}

TEST(OptimizerTest, ClipGradNormNoOpWhenSmall) {
  Var x = MakeParameter(Tensor(1, 1));
  Sgd sgd({x}, 1.0f);
  sgd.ZeroGrad();
  x->grad.at(0, 0) = 0.5f;
  sgd.ClipGradNorm(1.0);
  EXPECT_FLOAT_EQ(x->grad.at(0, 0), 0.5f);
}

TEST(OptimizerTest, ZeroGradClearsAll) {
  Var x = MakeParameter(Tensor(2, 2, 1.0f));
  Adam adam({x}, 0.1f);
  x->grad.Fill(7.0f);
  adam.ZeroGrad();
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(x->grad.data()[i], 0.0f);
}

TEST(OptimizerDeathTest, RejectsConstantParams) {
  Var c = MakeConstant(Tensor(1, 1));
  EXPECT_DEATH(Sgd({c}, 0.1f), "requires_grad");
}

TEST(AdamTest, LearningRateAccessors) {
  Var x = MakeParameter(Tensor(1, 1));
  Adam adam({x}, 0.1f);
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.1f);
  adam.set_learning_rate(0.01f);
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.01f);
}

}  // namespace
}  // namespace fairgen::nn
