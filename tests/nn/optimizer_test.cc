#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/ops.h"

namespace fairgen::nn {
namespace {

// Minimizes f(x) = ||x - target||^2 with the given optimizer; returns the
// final distance to the target.
template <typename Optim>
float MinimizeQuadratic(Optim& optim, const Var& x, const Tensor& target,
                        int steps) {
  Var t = MakeConstant(target);
  for (int i = 0; i < steps; ++i) {
    optim.ZeroGrad();
    Var loss = MeanAll(Square(Sub(x, t)));
    Backward(loss);
    optim.Step();
  }
  float dist = 0.0f;
  for (size_t i = 0; i < x->value.size(); ++i) {
    float d = x->value.data()[i] - target.data()[i];
    dist += d * d;
  }
  return std::sqrt(dist);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Rng rng(1);
  Var x = MakeParameter(Tensor::Randn(2, 3, 1.0f, rng));
  Tensor target(2, 3, 0.7f);
  Sgd sgd({x}, 0.3f);
  EXPECT_LT(MinimizeQuadratic(sgd, x, target, 100), 1e-3f);
}

TEST(SgdTest, MomentumAcceleratesConvergence) {
  Rng rng(2);
  Tensor init = Tensor::Randn(2, 3, 1.0f, rng);
  Tensor target(2, 3, -0.4f);

  Var plain_x = MakeParameter(init);
  Sgd plain({plain_x}, 0.05f);
  float plain_dist = MinimizeQuadratic(plain, plain_x, target, 40);

  Var mom_x = MakeParameter(init);
  Sgd momentum({mom_x}, 0.05f, 0.9f);
  float mom_dist = MinimizeQuadratic(momentum, mom_x, target, 40);

  EXPECT_LT(mom_dist, plain_dist);
}

TEST(SgdTest, WeightDecayShrinksParameters) {
  Var x = MakeParameter(Tensor(1, 4, 1.0f));
  Sgd sgd({x}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  // Zero gradient: only decay acts.
  sgd.ZeroGrad();
  sgd.Step();
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x->value.data()[i], 1.0f - 0.1f * 0.5f, 1e-6);
  }
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Rng rng(3);
  Var x = MakeParameter(Tensor::Randn(3, 3, 2.0f, rng));
  Tensor target(3, 3, 1.5f);
  Adam adam({x}, 0.1f);
  EXPECT_LT(MinimizeQuadratic(adam, x, target, 300), 1e-2f);
}

TEST(AdamTest, HandlesIllConditionedScales) {
  // One coordinate's gradient is 100x the other's; Adam normalizes per
  // coordinate so both should converge.
  Var x = MakeParameter(Tensor(1, 2, 1.0f));
  Var scale = MakeConstant(Tensor(1, 2, std::vector<float>{10.0f, 0.1f}));
  Adam adam({x}, 0.05f);
  for (int i = 0; i < 400; ++i) {
    adam.ZeroGrad();
    Var loss = MeanAll(Square(Mul(x, scale)));
    Backward(loss);
    adam.Step();
  }
  EXPECT_NEAR(x->value.at(0, 0), 0.0f, 1e-2);
  EXPECT_NEAR(x->value.at(0, 1), 0.0f, 0.2);
}

TEST(OptimizerTest, ClipGradNormScalesDown) {
  Var x = MakeParameter(Tensor(1, 2));
  Sgd sgd({x}, 1.0f);
  sgd.ZeroGrad();
  x->grad.at(0, 0) = 3.0f;
  x->grad.at(0, 1) = 4.0f;  // norm 5
  double pre = sgd.ClipGradNorm(1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(x->grad.at(0, 0), 0.6f, 1e-5);
  EXPECT_NEAR(x->grad.at(0, 1), 0.8f, 1e-5);
}

TEST(OptimizerTest, ClipGradNormNoOpWhenSmall) {
  Var x = MakeParameter(Tensor(1, 1));
  Sgd sgd({x}, 1.0f);
  sgd.ZeroGrad();
  x->grad.at(0, 0) = 0.5f;
  sgd.ClipGradNorm(1.0);
  EXPECT_FLOAT_EQ(x->grad.at(0, 0), 0.5f);
}

TEST(OptimizerTest, ZeroGradClearsAll) {
  Var x = MakeParameter(Tensor(2, 2, 1.0f));
  Adam adam({x}, 0.1f);
  x->grad.Fill(7.0f);
  adam.ZeroGrad();
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(x->grad.data()[i], 0.0f);
}

TEST(OptimizerDeathTest, RejectsConstantParams) {
  Var c = MakeConstant(Tensor(1, 1));
  EXPECT_DEATH(Sgd({c}, 0.1f), "requires_grad");
}

// Resuming from SaveState/LoadState must replay the exact update
// trajectory: 10 checkpointed + 10 resumed steps end bitwise equal to 20
// uninterrupted steps.
TEST(OptimizerStateTest, AdamRoundTripResumesExactTrajectory) {
  Rng rng(21);
  Tensor init = Tensor::Randn(2, 3, 1.0f, rng);
  Tensor target(2, 3, 0.7f);

  Var ref = MakeParameter(init);
  Adam ref_opt({ref}, 0.1f);
  MinimizeQuadratic(ref_opt, ref, target, 10);
  OptimizerState saved = ref_opt.SaveState();
  Tensor at_checkpoint = ref->value;
  MinimizeQuadratic(ref_opt, ref, target, 10);

  Var resumed = MakeParameter(at_checkpoint);
  Adam resumed_opt({resumed}, 0.1f);
  ASSERT_TRUE(resumed_opt.LoadState(saved).ok());
  MinimizeQuadratic(resumed_opt, resumed, target, 10);

  for (size_t i = 0; i < ref->value.size(); ++i) {
    EXPECT_EQ(resumed->value.data()[i], ref->value.data()[i]) << "elem " << i;
  }
}

TEST(OptimizerStateTest, SgdMomentumRoundTripResumesExactTrajectory) {
  Rng rng(22);
  Tensor init = Tensor::Randn(3, 2, 1.0f, rng);
  Tensor target(3, 2, -0.4f);

  Var ref = MakeParameter(init);
  Sgd ref_opt({ref}, 0.05f, 0.9f);
  MinimizeQuadratic(ref_opt, ref, target, 10);
  OptimizerState saved = ref_opt.SaveState();
  EXPECT_EQ(saved.type, "sgd");
  Tensor at_checkpoint = ref->value;
  MinimizeQuadratic(ref_opt, ref, target, 10);

  Var resumed = MakeParameter(at_checkpoint);
  Sgd resumed_opt({resumed}, 0.05f, 0.9f);
  ASSERT_TRUE(resumed_opt.LoadState(saved).ok());
  MinimizeQuadratic(resumed_opt, resumed, target, 10);

  for (size_t i = 0; i < ref->value.size(); ++i) {
    EXPECT_EQ(resumed->value.data()[i], ref->value.data()[i]) << "elem " << i;
  }
}

// A checkpoint written with one algorithm must not load into the other —
// the descriptive error names both, and the target is left untouched.
TEST(OptimizerStateTest, RejectsCrossOptimizerState) {
  Var x = MakeParameter(Tensor(1, 2, 1.0f));
  Adam adam({x}, 0.1f);
  Var y = MakeParameter(Tensor(1, 2, 1.0f));
  Sgd sgd({y}, 0.1f, 0.9f);

  Status adam_into_sgd = sgd.LoadState(adam.SaveState());
  EXPECT_TRUE(adam_into_sgd.IsInvalidArgument());
  EXPECT_NE(adam_into_sgd.ToString().find("optimizer mismatch"),
            std::string::npos)
      << adam_into_sgd.ToString();

  Status sgd_into_adam = adam.LoadState(sgd.SaveState());
  EXPECT_TRUE(sgd_into_adam.IsInvalidArgument());
  EXPECT_NE(sgd_into_adam.ToString().find("optimizer mismatch"),
            std::string::npos);
}

TEST(OptimizerStateTest, RejectsSlotShapeMismatch) {
  Var x = MakeParameter(Tensor(2, 2, 1.0f));
  Adam adam({x}, 0.1f);
  OptimizerState state = adam.SaveState();
  state.slots[0] = Tensor(2, 3);  // wrong shape for the first moment
  Status status = adam.LoadState(state);
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.ToString().find("shape"), std::string::npos);
}

TEST(OptimizerStateTest, RejectsSlotCountMismatch) {
  Var x = MakeParameter(Tensor(2, 2, 1.0f));
  Adam adam({x}, 0.1f);
  OptimizerState state = adam.SaveState();
  state.slots.pop_back();
  EXPECT_TRUE(adam.LoadState(state).IsInvalidArgument());
}

TEST(AdamTest, LearningRateAccessors) {
  Var x = MakeParameter(Tensor(1, 1));
  Adam adam({x}, 0.1f);
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.1f);
  adam.set_learning_rate(0.01f);
  EXPECT_FLOAT_EQ(adam.learning_rate(), 0.01f);
}

}  // namespace
}  // namespace fairgen::nn
