#include "nn/layers.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/grad_check.h"
#include "nn/loss.h"

namespace fairgen::nn {
namespace {

TEST(LinearTest, ShapesAndBias) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  Var x = MakeConstant(Tensor::Randn(5, 4, 1.0f, rng));
  Var y = layer.Forward(x);
  EXPECT_EQ(y->rows(), 5u);
  EXPECT_EQ(y->cols(), 3u);
  EXPECT_EQ(layer.Parameters().size(), 2u);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(2);
  Linear layer(4, 3, rng, /*use_bias=*/false);
  EXPECT_EQ(layer.Parameters().size(), 1u);
  Var x = MakeConstant(Tensor(1, 4));  // zero input
  Var y = layer.Forward(x);
  for (size_t i = 0; i < y->value.size(); ++i) {
    EXPECT_EQ(y->value.data()[i], 0.0f);
  }
}

TEST(LinearTest, GradCheck) {
  Rng rng(3);
  Linear layer(4, 3, rng);
  Var x = MakeConstant(Tensor::Randn(5, 4, 1.0f, rng));
  auto loss = [&]() { return MeanAll(Square(layer.Forward(x))); };
  Rng check_rng(7);
  auto result = CheckGradients(loss, layer.Parameters(), 8, check_rng);
  EXPECT_LT(result.max_rel_error, 2e-2);
}

TEST(EmbeddingTest, LookupMatchesTable) {
  Rng rng(4);
  Embedding emb(10, 5, rng);
  Var rows = emb.Forward({3, 3, 7});
  EXPECT_EQ(rows->rows(), 3u);
  for (size_t c = 0; c < 5; ++c) {
    EXPECT_EQ(rows->value.at(0, c), emb.table()->value.at(3, c));
    EXPECT_EQ(rows->value.at(1, c), emb.table()->value.at(3, c));
    EXPECT_EQ(rows->value.at(2, c), emb.table()->value.at(7, c));
  }
}

TEST(EmbeddingTest, RepeatedIdsAccumulateGradients) {
  Rng rng(5);
  Embedding emb(6, 3, rng);
  ZeroGrad(emb.Parameters());
  Var rows = emb.Forward({2, 2});
  Backward(SumAll(rows));
  // Row 2 used twice: gradient 2 per coordinate; others zero.
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_FLOAT_EQ(emb.table()->grad.at(2, c), 2.0f);
    EXPECT_FLOAT_EQ(emb.table()->grad.at(0, c), 0.0f);
  }
}

TEST(LayerNormTest, NormalizesRows) {
  Rng rng(6);
  LayerNorm ln(8);
  Var x = MakeConstant(Tensor::Randn(4, 8, 3.0f, rng));
  Var y = ln.Forward(x);
  // With unit gain and zero bias, each output row has ~zero mean and ~unit
  // variance.
  for (size_t r = 0; r < 4; ++r) {
    double mean = 0.0;
    for (size_t c = 0; c < 8; ++c) mean += y->value.at(r, c);
    mean /= 8.0;
    double var = 0.0;
    for (size_t c = 0; c < 8; ++c) {
      double d = y->value.at(r, c) - mean;
      var += d * d;
    }
    var /= 8.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNormTest, ParameterCount) {
  LayerNorm ln(16);
  EXPECT_EQ(ln.Parameters().size(), 2u);
  EXPECT_EQ(ln.NumParameters(), 32u);
}

TEST(MlpTest, ShapesAndDepth) {
  Rng rng(7);
  Mlp mlp({6, 12, 4}, rng);
  Var x = MakeConstant(Tensor::Randn(3, 6, 1.0f, rng));
  Var y = mlp.Forward(x);
  EXPECT_EQ(y->rows(), 3u);
  EXPECT_EQ(y->cols(), 4u);
  EXPECT_EQ(mlp.Parameters().size(), 4u);  // 2 layers x (W, b)
}

TEST(MlpTest, TrainsToFitSmallClassification) {
  // The MLP (the d_theta architecture) must be able to fit a linearly
  // separable 2-class problem.
  Rng rng(8);
  Mlp mlp({2, 8, 2}, rng);
  Tensor features(20, 2);
  std::vector<uint32_t> labels(20);
  for (size_t i = 0; i < 20; ++i) {
    float x0 = static_cast<float>(rng.Normal());
    features.at(i, 0) = x0;
    features.at(i, 1) = static_cast<float>(rng.Normal()) * 0.1f;
    labels[i] = x0 > 0.0f ? 1 : 0;
  }
  Var x = MakeConstant(features);
  std::vector<Var> params = mlp.Parameters();
  for (int step = 0; step < 300; ++step) {
    ZeroGrad(params);
    Var loss = SoftmaxCrossEntropy(mlp.Forward(x), labels);
    Backward(loss);
    for (const Var& p : params) {
      p->value.AddScaled(p->grad, -0.2f);
    }
  }
  Var logits = mlp.Forward(x);
  int correct = 0;
  for (size_t i = 0; i < 20; ++i) {
    uint32_t pred =
        logits->value.at(i, 1) > logits->value.at(i, 0) ? 1 : 0;
    if (pred == labels[i]) ++correct;
  }
  EXPECT_GE(correct, 19);
}

TEST(MlpDeathTest, RequiresAtLeastTwoDims) {
  Rng rng(9);
  EXPECT_DEATH(Mlp({5}, rng), "");
}

}  // namespace
}  // namespace fairgen::nn
