#include <cmath>
#include <cstring>
#include "nn/transformer.h"

#include <gtest/gtest.h>

#include "nn/grad_check.h"
#include "nn/optimizer.h"

namespace fairgen::nn {
namespace {

TransformerConfig SmallConfig() {
  TransformerConfig cfg;
  cfg.vocab_size = 12;
  cfg.dim = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_dim = 24;
  cfg.max_len = 16;
  return cfg;
}

TEST(AttentionTest, OutputShapePreserved) {
  Rng rng(1);
  MultiHeadSelfAttention attn(16, 4, rng);
  Var x = MakeConstant(Tensor::Randn(5, 16, 1.0f, rng));
  Var y = attn.Forward(x);
  EXPECT_EQ(y->rows(), 5u);
  EXPECT_EQ(y->cols(), 16u);
}

TEST(AttentionTest, CausalMaskBlocksFuture) {
  // Changing a *later* token must not change earlier outputs.
  Rng rng(2);
  MultiHeadSelfAttention attn(8, 2, rng);
  Tensor base = Tensor::Randn(4, 8, 1.0f, rng);
  Var x1 = MakeConstant(base);
  Var y1 = attn.Forward(x1);
  Tensor perturbed = base;
  for (size_t c = 0; c < 8; ++c) perturbed.at(3, c) += 5.0f;
  Var x2 = MakeConstant(perturbed);
  Var y2 = attn.Forward(x2);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 8; ++c) {
      EXPECT_NEAR(y1->value.at(r, c), y2->value.at(r, c), 1e-5)
          << "row " << r << " depended on a future token";
    }
  }
  // The last row must change (sanity that the perturbation mattered).
  double diff = 0.0;
  for (size_t c = 0; c < 8; ++c) {
    diff += std::abs(y1->value.at(3, c) - y2->value.at(3, c));
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(AttentionDeathTest, DimMustDivideHeads) {
  Rng rng(3);
  EXPECT_DEATH(MultiHeadSelfAttention(10, 3, rng), "divisible");
}

TEST(TransformerLMTest, LogitsShape) {
  Rng rng(4);
  TransformerLM lm(SmallConfig(), rng);
  Var logits = lm.Logits({1, 2, 3});
  EXPECT_EQ(logits->rows(), 3u);
  EXPECT_EQ(logits->cols(), 12u);
}

TEST(TransformerLMTest, CausalityOfFullModel) {
  Rng rng(5);
  TransformerLM lm(SmallConfig(), rng);
  Var a = lm.Logits({1, 2, 3, 4});
  Var b = lm.Logits({1, 2, 3, 9});
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 12; ++c) {
      EXPECT_NEAR(a->value.at(r, c), b->value.at(r, c), 1e-5);
    }
  }
}

TEST(TransformerLMTest, NextLogitsMatchesLastLogitsRow) {
  Rng rng(6);
  TransformerLM lm(SmallConfig(), rng);
  std::vector<uint32_t> prefix{3, 1, 7, 2};
  Var full = lm.Logits(prefix);
  Var last = lm.NextLogits(prefix);
  for (size_t c = 0; c < 12; ++c) {
    EXPECT_NEAR(last->value.at(0, c), full->value.at(3, c), 1e-5);
  }
}

TEST(TransformerLMTest, WalkNllIsPositiveAndFinite) {
  Rng rng(7);
  TransformerLM lm(SmallConfig(), rng);
  Var nll = lm.WalkNll({0, 1, 2, 3, 4});
  EXPECT_GT(nll->value.ScalarValue(), 0.0f);
  EXPECT_TRUE(std::isfinite(nll->value.ScalarValue()));
}

TEST(TransformerLMTest, SampleWalkRespectsLengthAndVocab) {
  Rng rng(8);
  TransformerLM lm(SmallConfig(), rng);
  std::vector<uint32_t> walk = lm.SampleWalk(3, 9, rng);
  EXPECT_EQ(walk.size(), 9u);
  EXPECT_EQ(walk[0], 3u);
  for (uint32_t v : walk) EXPECT_LT(v, 12u);
}

TEST(TransformerLMTest, GradCheckOnWalkNll) {
  Rng rng(9);
  TransformerConfig cfg = SmallConfig();
  cfg.dim = 8;
  cfg.ffn_dim = 12;
  TransformerLM lm(cfg, rng);
  std::vector<uint32_t> walk{0, 3, 1, 5};
  auto loss = [&]() { return lm.WalkNll(walk); };
  Rng check_rng(11);
  auto result = CheckGradients(loss, lm.Parameters(), 4, check_rng);
  EXPECT_LT(result.max_rel_error, 5e-2)
      << "abs=" << result.max_abs_error;
}

TEST(TransformerLMTest, OverfitsTinyCorpus) {
  // Training must drive the NLL of a repeated deterministic walk close to
  // zero — the core requirement for a usable generator.
  Rng rng(10);
  TransformerLM lm(SmallConfig(), rng);
  std::vector<uint32_t> walk{0, 1, 2, 3, 4, 5};
  Adam optim(lm.Parameters(), 1e-2f);
  float initial = lm.WalkNll(walk)->value.ScalarValue();
  for (int step = 0; step < 150; ++step) {
    optim.ZeroGrad();
    Var loss = lm.WalkNll(walk);
    Backward(loss);
    optim.Step();
  }
  float final = lm.WalkNll(walk)->value.ScalarValue();
  EXPECT_LT(final, initial * 0.2f);
  EXPECT_LT(final, 0.5f);
  // A trained model should now deterministically continue the walk.
  uint32_t next = lm.SampleNext({0, 1, 2}, rng, /*temperature=*/0.05f);
  EXPECT_EQ(next, 3u);
}

TEST(TransformerLMTest, ParameterCountReasonable) {
  Rng rng(11);
  TransformerLM lm(SmallConfig(), rng);
  // tok + pos + block(ln1 + attn{qkv,out} + ln2 + ffn1 + ffn2) + final ln.
  size_t n = lm.NumParameters();
  EXPECT_GT(n, 1000u);
  EXPECT_LT(n, 50000u);
}

TEST(TransformerDecoderTest, KvDecoderMatchesNextLogitsBitwise) {
  // The KV-cache decoder must reproduce the full forward pass bit for
  // bit at every prefix length — it is substituted for NextLogits in
  // SampleWalk without any numeric-tolerance escape hatch. Use a config
  // with 2 layers and a ragged head_dim to exercise the cache layout.
  Rng rng(13);
  TransformerConfig cfg = SmallConfig();
  cfg.num_layers = 2;
  TransformerLM lm(cfg, rng);
  const std::vector<uint32_t> prefix{3, 1, 7, 2, 0, 11, 5, 5, 9};
  TransformerDecoder decoder(lm);
  for (size_t len = 1; len <= prefix.size(); ++len) {
    const std::vector<float>& inc = decoder.Step(prefix[len - 1]);
    EXPECT_EQ(decoder.length(), len);
    std::vector<uint32_t> head(prefix.begin(), prefix.begin() + len);
    Var full = lm.NextLogits(head);
    ASSERT_EQ(inc.size(), cfg.vocab_size);
    EXPECT_EQ(std::memcmp(inc.data(), full->value.row(0),
                          cfg.vocab_size * sizeof(float)),
              0)
        << "decoder diverged from NextLogits at prefix length " << len;
  }
}

TEST(TransformerDecoderTest, ResetStartsAFreshSequence) {
  Rng rng(14);
  TransformerLM lm(SmallConfig(), rng);
  TransformerDecoder decoder(lm);
  std::vector<float> first = decoder.Step(4);
  decoder.Step(9);
  decoder.Reset();
  EXPECT_EQ(decoder.length(), 0u);
  const std::vector<float>& again = decoder.Step(4);
  EXPECT_EQ(std::memcmp(first.data(), again.data(),
                        first.size() * sizeof(float)),
            0);
}

TEST(TransformerDecoderTest, SampleWalkMatchesSampleNextLoop) {
  // SampleWalk now decodes incrementally; the walks must be identical to
  // the SampleNext-per-token loop it replaced (same rng consumption,
  // same picks) — this is what keeps checkpointed runs reproducible
  // across the change.
  Rng rng(15);
  TransformerConfig cfg = SmallConfig();
  cfg.num_layers = 2;
  TransformerLM lm(cfg, rng);
  for (uint32_t seed = 1; seed <= 5; ++seed) {
    Rng walk_rng(seed), ref_rng(seed);
    std::vector<uint32_t> walk =
        lm.SampleWalk(seed % cfg.vocab_size, 10, walk_rng, 0.8f);
    std::vector<uint32_t> ref{seed % static_cast<uint32_t>(cfg.vocab_size)};
    while (ref.size() < 10) {
      ref.push_back(lm.SampleNext(ref, ref_rng, 0.8f));
    }
    EXPECT_EQ(walk, ref) << "seed " << seed;
    // The two paths must also leave the rng streams in the same state.
    EXPECT_EQ(walk_rng.NextU32(), ref_rng.NextU32()) << "seed " << seed;
  }
}

TEST(TransformerLMDeathTest, WalkExceedingMaxLenRejected) {
  Rng rng(12);
  TransformerConfig cfg = SmallConfig();
  cfg.max_len = 4;
  TransformerLM lm(cfg, rng);
  EXPECT_DEATH(lm.Logits({0, 1, 2, 3, 4}), "max_len");
}

}  // namespace
}  // namespace fairgen::nn
