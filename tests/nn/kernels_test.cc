// Kernel-vs-reference suite: the scalar backend is the determinism
// reference; the AVX2 backend must reproduce it to 0 ULP (bitwise) on
// every kernel, because the determinism suite certifies vectorized builds
// without a numeric-tolerance mode. Shapes deliberately include ragged
// sizes (not multiples of the 8-lane vector width) to exercise the tails.

#include "nn/kernels/kernels.h"

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "rng/rng.h"

namespace fairgen::nn::kernels {
namespace {

std::vector<float> RandomVector(size_t len, Rng& rng) {
  std::vector<float> v(len);
  for (float& x : v) {
    x = static_cast<float>(rng.UniformDouble() * 4.0 - 2.0);
  }
  return v;
}

// Injects exact zeros so the zero-skip fast path in the matmul i/p loops
// runs on both backends.
void SprinkleZeros(std::vector<float>& v, Rng& rng) {
  for (float& x : v) {
    if (rng.UniformDouble() < 0.2) x = 0.0f;
  }
}

bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

struct Shape {
  size_t m, k, n;
};

// Ragged shapes around the 8-lane width and the 256-column panel split.
const Shape kShapes[] = {{1, 1, 1},   {3, 5, 7},    {8, 8, 8},
                         {9, 17, 33}, {16, 31, 64}, {2, 300, 13},
                         {5, 7, 260}};

class KernelParityTest : public testing::Test {
 protected:
  void SetUp() override {
    if (!Avx2Available()) {
      GTEST_SKIP() << "AVX2 unavailable on this build/CPU";
    }
  }
};

TEST_F(KernelParityTest, MatMulBitwise) {
  Rng rng(101);
  for (const Shape& s : kShapes) {
    std::vector<float> a = RandomVector(s.m * s.k, rng);
    std::vector<float> b = RandomVector(s.k * s.n, rng);
    SprinkleZeros(a, rng);
    std::vector<float> c_scalar(s.m * s.n), c_avx2(s.m * s.n);
    internal::ScalarTable().matmul(a.data(), b.data(), c_scalar.data(), s.m,
                                   s.k, s.n);
    internal::Avx2Table().matmul(a.data(), b.data(), c_avx2.data(), s.m, s.k,
                                 s.n);
    EXPECT_TRUE(BitwiseEqual(c_scalar, c_avx2))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

TEST_F(KernelParityTest, MatMulTransABitwise) {
  Rng rng(102);
  for (const Shape& s : kShapes) {
    std::vector<float> a = RandomVector(s.k * s.m, rng);
    std::vector<float> b = RandomVector(s.k * s.n, rng);
    SprinkleZeros(a, rng);
    std::vector<float> c_scalar(s.m * s.n), c_avx2(s.m * s.n);
    internal::ScalarTable().matmul_trans_a(a.data(), b.data(),
                                           c_scalar.data(), s.m, s.k, s.n);
    internal::Avx2Table().matmul_trans_a(a.data(), b.data(), c_avx2.data(),
                                         s.m, s.k, s.n);
    EXPECT_TRUE(BitwiseEqual(c_scalar, c_avx2))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

TEST_F(KernelParityTest, MatMulTransBBitwiseAcrossDispatch) {
  // MatMulTransB is dispatched (transpose + active matmul), so compare
  // the whole call under forced backends.
  Rng rng(103);
  for (const Shape& s : kShapes) {
    std::vector<float> a = RandomVector(s.m * s.k, rng);
    std::vector<float> b = RandomVector(s.n * s.k, rng);
    std::vector<float> c_scalar(s.m * s.n), c_avx2(s.m * s.n);
    Backend prev = SetBackendForTesting(Backend::kScalar);
    MatMulTransB(a.data(), b.data(), c_scalar.data(), s.m, s.k, s.n);
    SetBackendForTesting(Backend::kAvx2);
    MatMulTransB(a.data(), b.data(), c_avx2.data(), s.m, s.k, s.n);
    SetBackendForTesting(prev);
    EXPECT_TRUE(BitwiseEqual(c_scalar, c_avx2))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

TEST_F(KernelParityTest, ElementwiseBitwise) {
  Rng rng(104);
  for (size_t len : {1u, 7u, 8u, 9u, 31u, 1000u}) {
    std::vector<float> base = RandomVector(len, rng);
    std::vector<float> b = RandomVector(len, rng);

    std::vector<float> x = base, y = base;
    internal::ScalarTable().add(x.data(), b.data(), len);
    internal::Avx2Table().add(y.data(), b.data(), len);
    EXPECT_TRUE(BitwiseEqual(x, y)) << "add len=" << len;

    x = base, y = base;
    internal::ScalarTable().add_scaled(x.data(), b.data(), 0.37f, len);
    internal::Avx2Table().add_scaled(y.data(), b.data(), 0.37f, len);
    EXPECT_TRUE(BitwiseEqual(x, y)) << "add_scaled len=" << len;

    x = base, y = base;
    internal::ScalarTable().scale(x.data(), -1.93f, len);
    internal::Avx2Table().scale(y.data(), -1.93f, len);
    EXPECT_TRUE(BitwiseEqual(x, y)) << "scale len=" << len;
  }
}

TEST_F(KernelParityTest, SoftmaxNllBitwise) {
  Rng rng(105);
  for (size_t rows : {1u, 3u, 9u}) {
    for (size_t cols : {2u, 8u, 33u}) {
      std::vector<float> logits = RandomVector(rows * cols, rng);
      std::vector<uint32_t> targets(rows);
      std::vector<uint8_t> mask(rows);
      for (size_t r = 0; r < rows; ++r) {
        targets[r] = rng.UniformU32(static_cast<uint32_t>(cols));
        mask[r] = static_cast<uint8_t>(rng.UniformU32(2));
      }
      // Forward is a single scalar implementation: identical under both
      // forced backends by construction, so just pin that the dispatch
      // override does not perturb it.
      std::vector<float> probs_a(rows * cols), probs_b(rows * cols);
      Backend prev = SetBackendForTesting(Backend::kScalar);
      double nll_a = SoftmaxNllForward(logits.data(), rows, cols,
                                       targets.data(), probs_a.data());
      SetBackendForTesting(Backend::kAvx2);
      double nll_b = SoftmaxNllForward(logits.data(), rows, cols,
                                       targets.data(), probs_b.data());
      SetBackendForTesting(prev);
      EXPECT_EQ(nll_a, nll_b);
      EXPECT_TRUE(BitwiseEqual(probs_a, probs_b));

      // Backward is vectorized: compare the backend tables directly,
      // masked and unmasked.
      const uint8_t* masks[] = {nullptr, mask.data()};
      for (const uint8_t* row_mask : masks) {
        std::vector<float> d_scalar = RandomVector(rows * cols, rng);
        std::vector<float> d_avx2 = d_scalar;
        internal::ScalarTable().softmax_nll_backward(
            probs_a.data(), targets.data(), row_mask, 0.61f, rows, cols,
            d_scalar.data());
        internal::Avx2Table().softmax_nll_backward(
            probs_a.data(), targets.data(), row_mask, 0.61f, rows, cols,
            d_avx2.data());
        EXPECT_TRUE(BitwiseEqual(d_scalar, d_avx2))
            << "rows=" << rows << " cols=" << cols
            << " masked=" << (row_mask != nullptr);
      }
    }
  }
}

// --------------------------------------------------------------------------
// Reference semantics (backend-independent)
// --------------------------------------------------------------------------

TEST(KernelSemanticsTest, MatMulMatchesNaiveTripleLoop) {
  Rng rng(7);
  const size_t m = 5, k = 9, n = 11;
  std::vector<float> a = RandomVector(m * k, rng);
  std::vector<float> b = RandomVector(k * n, rng);
  std::vector<float> c(m * n);
  internal::ScalarTable().matmul(a.data(), b.data(), c.data(), m, k, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double expect = 0.0;
      for (size_t p = 0; p < k; ++p) {
        expect += static_cast<double>(a[i * k + p]) *
                  static_cast<double>(b[p * n + j]);
      }
      EXPECT_NEAR(c[i * n + j], expect, 1e-4) << i << "," << j;
    }
  }
}

TEST(KernelSemanticsTest, SoftmaxNllForwardMatchesDirectFormula) {
  Rng rng(8);
  const size_t rows = 4, cols = 6;
  std::vector<float> logits = RandomVector(rows * cols, rng);
  std::vector<uint32_t> targets = {1, 0, 5, 3};
  std::vector<float> probs(rows * cols);
  double total = SoftmaxNllForward(logits.data(), rows, cols, targets.data(),
                                   probs.data());
  double expect = 0.0;
  for (size_t r = 0; r < rows; ++r) {
    double z = 0.0;
    for (size_t j = 0; j < cols; ++j) {
      z += std::exp(static_cast<double>(logits[r * cols + j]));
    }
    expect += std::log(z) - static_cast<double>(logits[r * cols + targets[r]]);
    double psum = 0.0;
    for (size_t j = 0; j < cols; ++j) psum += probs[r * cols + j];
    EXPECT_NEAR(psum, 1.0, 1e-5) << "row " << r;
  }
  EXPECT_NEAR(total, expect, 1e-4);
}

// --------------------------------------------------------------------------
// Dispatch plumbing
// --------------------------------------------------------------------------

TEST(KernelDispatchTest, ParseBackendName) {
  Backend b;
  EXPECT_TRUE(ParseBackendName("scalar", &b));
  EXPECT_EQ(b, Backend::kScalar);
  EXPECT_TRUE(ParseBackendName("avx2", &b));
  EXPECT_EQ(b, Backend::kAvx2);
  EXPECT_FALSE(ParseBackendName("neon", &b));
  EXPECT_FALSE(ParseBackendName("", &b));
}

TEST(KernelDispatchTest, BackendNamesAreStable) {
  EXPECT_STREQ(BackendName(Backend::kScalar), "scalar");
  EXPECT_STREQ(BackendName(Backend::kAvx2), "avx2");
}

TEST(KernelDispatchTest, ForcedScalarBackendTakesEffect) {
  Backend prev = SetBackendForTesting(Backend::kScalar);
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);
  SetBackendForTesting(prev);
  EXPECT_EQ(ActiveBackend(), prev);
}

TEST(KernelDispatchTest, ForcingAvx2DowngradesWhenUnavailable) {
  Backend prev = SetBackendForTesting(Backend::kAvx2);
  if (Avx2Available()) {
    EXPECT_EQ(ActiveBackend(), Backend::kAvx2);
  } else {
    EXPECT_EQ(ActiveBackend(), Backend::kScalar);
  }
  SetBackendForTesting(prev);
}

}  // namespace
}  // namespace fairgen::nn::kernels
