// Byte-accounting balance tests: every float the nn substrate allocates is
// charged to memprobe::NnBytes() through the FloatBuffer tracking
// allocator, and every free credits it back — so after any tensor
// workload the live tally returns exactly to its baseline. Graph CSR
// accounting is capacity-based and checked against the exact array sizes.

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/memprobe.h"
#include "graph/builder.h"
#include "graph/graph.h"
#include "nn/tensor.h"

namespace fairgen {
namespace {

TEST(NnBytesAccountingTest, TensorLifecycleBalances) {
  const uint64_t baseline = memprobe::NnBytes().live();
  {
    nn::Tensor a(32, 64);
    EXPECT_GE(memprobe::NnBytes().live(),
              baseline + 32 * 64 * sizeof(float));
    nn::Tensor b(16, 16, 1.5f);
    nn::Tensor c(2, 2, std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f});
    EXPECT_EQ(c.at(1, 1), 4.0f);
    EXPECT_GE(memprobe::NnBytes().live(),
              baseline + (32 * 64 + 16 * 16 + 4) * sizeof(float));
  }
  EXPECT_EQ(memprobe::NnBytes().live(), baseline)
      << "tensor teardown must credit back every charged byte";
}

TEST(NnBytesAccountingTest, CopyAndMoveBalance) {
  const uint64_t baseline = memprobe::NnBytes().live();
  {
    nn::Tensor a(8, 8, 2.0f);
    nn::Tensor copy = a;               // charges a second buffer
    nn::Tensor moved = std::move(a);   // transfers, no net charge
    EXPECT_EQ(copy.at(0, 0), 2.0f);
    EXPECT_EQ(moved.at(7, 7), 2.0f);
    EXPECT_GE(memprobe::NnBytes().live(),
              baseline + 2 * 8 * 8 * sizeof(float));
  }
  EXPECT_EQ(memprobe::NnBytes().live(), baseline);
}

TEST(NnBytesAccountingTest, PeakIsAtLeastLiveAndSticky) {
  const uint64_t baseline = memprobe::NnBytes().live();
  {
    nn::Tensor big(64, 256);
    (void)big;
    EXPECT_GE(memprobe::NnBytes().peak(), memprobe::NnBytes().live());
  }
  EXPECT_GE(memprobe::NnBytes().peak(),
            baseline + 64 * 256 * sizeof(float))
      << "peak must remember the high-water mark after the free";
  EXPECT_EQ(memprobe::NnBytes().live(), baseline);
}

TEST(GraphBytesAccountingTest, MemoryBytesMatchesCsrArrays) {
  GraphBuilder builder(/*num_nodes=*/10);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3).ok());
  auto built = builder.Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Graph g = *std::move(built);
  // CSR storage: (num_nodes + 1) offsets plus one neighbor entry per
  // directed edge; capacity can only round up from there.
  size_t lower_bound =
      (g.num_nodes() + 1) * sizeof(uint64_t) + 2 * 3 * sizeof(NodeId);
  EXPECT_GE(g.MemoryBytes(), lower_bound);
  EXPECT_GT(g.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace fairgen
