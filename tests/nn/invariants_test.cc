// Numeric invariants of the nn substrate that the training pipeline
// depends on but that individual op grad-checks do not capture.

#include <cmath>

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "nn/transformer.h"

namespace fairgen::nn {
namespace {

TEST(SoftmaxInvariants, RowsArePositiveAndSumToOne) {
  Rng rng(1);
  Var x = MakeParameter(Tensor::Randn(6, 9, 3.0f, rng));
  Var y = SoftmaxRows(x);
  for (size_t r = 0; r < y->rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < y->cols(); ++c) {
      EXPECT_GT(y->value.at(r, c), 0.0f);
      sum += y->value.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxInvariants, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(2);
  Var x = MakeParameter(Tensor::Randn(4, 7, 2.0f, rng));
  Var soft = SoftmaxRows(x);
  Var log_soft = LogSoftmaxRows(x);
  for (size_t i = 0; i < soft->value.size(); ++i) {
    EXPECT_NEAR(log_soft->value.data()[i],
                std::log(soft->value.data()[i]), 1e-4);
  }
}

TEST(SoftmaxInvariants, ShiftInvariance) {
  Rng rng(3);
  Var x = MakeParameter(Tensor::Randn(3, 5, 1.0f, rng));
  Var shifted = AddScalar(x, 100.0f);
  Var a = SoftmaxRows(x);
  Var b = SoftmaxRows(shifted);
  for (size_t i = 0; i < a->value.size(); ++i) {
    EXPECT_NEAR(a->value.data()[i], b->value.data()[i], 1e-5);
  }
}

TEST(SequenceNllInvariants, MatchesManualComputation) {
  Tensor logits_t(2, 3, std::vector<float>{1.0f, 2.0f, 0.5f,
                                           0.0f, -1.0f, 3.0f});
  Var logits = MakeParameter(logits_t);
  std::vector<uint32_t> targets{1, 2};
  Var nll = SequenceNll(logits, targets);
  // Manual: per-row -log softmax at target, averaged.
  auto row_nll = [&](size_t r, uint32_t t) {
    double denom = 0.0;
    for (size_t c = 0; c < 3; ++c) {
      denom += std::exp(logits_t.at(r, c));
    }
    return -std::log(std::exp(logits_t.at(r, t)) / denom);
  };
  double expected = 0.5 * (row_nll(0, 1) + row_nll(1, 2));
  EXPECT_NEAR(nll->value.ScalarValue(), expected, 1e-5);
}

TEST(TiedProjectionInvariants, EmbeddingRowControlsLogitColumn) {
  // The generator's output projection is tied to the node embedding
  // table: boosting node k's embedding along the hidden direction raises
  // logits for k specifically.
  Rng rng(4);
  TransformerConfig cfg;
  cfg.vocab_size = 8;
  cfg.dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_dim = 12;
  cfg.max_len = 8;
  TransformerLM lm(cfg, rng);

  std::vector<uint32_t> prefix{0, 1, 2};
  Var before = lm.NextLogits(prefix);
  // Scale node 5's embedding strongly.
  Var table = lm.node_embeddings();
  for (size_t c = 0; c < cfg.dim; ++c) {
    table->value.at(5, c) *= 10.0f;
  }
  Var after = lm.NextLogits(prefix);
  double delta5 =
      std::abs(after->value.at(0, 5) - before->value.at(0, 5));
  double delta_other =
      std::abs(after->value.at(0, 3) - before->value.at(0, 3));
  EXPECT_GT(delta5, 10.0 * (delta_other + 1e-6));
}

TEST(NegativePenaltyInvariants, NeverNegative) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Var logits = MakeParameter(Tensor::Randn(4, 6, 2.0f, rng));
    std::vector<uint32_t> targets{0, 1, 2, 3};
    Var penalty = NegativeWalkPenalty(logits, targets, -std::log(6.0f));
    EXPECT_GE(penalty->value.ScalarValue(), 0.0f);
  }
}

TEST(BceInvariants, SymmetricUnderLabelFlip) {
  // BCE(z, 1) == BCE(-z, 0).
  Var a = MakeParameter(Tensor(1, 1, 1.7f));
  Var b = MakeParameter(Tensor(1, 1, -1.7f));
  Var la = BceWithLogits(a, {1.0f});
  Var lb = BceWithLogits(b, {0.0f});
  EXPECT_NEAR(la->value.ScalarValue(), lb->value.ScalarValue(), 1e-6);
}

}  // namespace
}  // namespace fairgen::nn
