#include "nn/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fairgen::nn {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_FALSE(t.empty());
  for (size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(TensorTest, FillValueConstructor) {
  Tensor t(2, 2, 3.5f);
  EXPECT_EQ(t.at(1, 1), 3.5f);
}

TEST(TensorTest, DataConstructorChecksSize) {
  Tensor t(2, 2, std::vector<float>{1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
}

TEST(TensorTest, RowMajorLayout) {
  Tensor t(2, 3);
  t.at(1, 2) = 9.0f;
  EXPECT_EQ(t.data()[5], 9.0f);
  EXPECT_EQ(t.row(1)[2], 9.0f);
}

TEST(TensorTest, ScalarHelpers) {
  Tensor s = Tensor::Scalar(2.5f);
  EXPECT_EQ(s.rows(), 1u);
  EXPECT_EQ(s.ScalarValue(), 2.5f);
}

TEST(TensorTest, AddAndScale) {
  Tensor a(1, 3, std::vector<float>{1, 2, 3});
  Tensor b(1, 3, std::vector<float>{10, 20, 30});
  a.Add(b);
  EXPECT_EQ(a.at(0, 2), 33.0f);
  a.Scale(0.5f);
  EXPECT_EQ(a.at(0, 0), 5.5f);
  a.AddScaled(b, -0.1f);
  EXPECT_NEAR(a.at(0, 1), 11.0f - 2.0f, 1e-6);
}

TEST(TensorTest, SumAndNorm) {
  Tensor t(1, 4, std::vector<float>{1, -2, 2, 4});
  EXPECT_EQ(t.Sum(), 5.0f);
  EXPECT_NEAR(t.Norm(), 5.0f, 1e-6);
}

TEST(TensorTest, RandnStatistics) {
  Rng rng(1);
  Tensor t = Tensor::Randn(100, 100, 2.0f, rng);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t i = 0; i < t.size(); ++i) {
    sum += t.data()[i];
    sum_sq += static_cast<double>(t.data()[i]) * t.data()[i];
  }
  double mean = sum / t.size();
  double var = sum_sq / t.size() - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(TensorTest, RandUniformBounds) {
  Rng rng(2);
  Tensor t = Tensor::RandUniform(50, 50, 0.3f, rng);
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.data()[i], -0.3f);
    EXPECT_LE(t.data()[i], 0.3f);
  }
}

TEST(TensorTest, MatMulCorrectness) {
  Tensor a(2, 3, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b(3, 2, std::vector<float>{7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(TensorTest, MatMulTransAMatchesExplicitTranspose) {
  Rng rng(3);
  Tensor a = Tensor::Randn(4, 3, 1.0f, rng);
  Tensor b = Tensor::Randn(4, 5, 1.0f, rng);
  Tensor expect = MatMul(Transpose(a), b);
  Tensor got = MatMulTransA(a, b);
  ASSERT_TRUE(got.SameShape(expect));
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expect.data()[i], 1e-4);
  }
}

TEST(TensorTest, MatMulTransBMatchesExplicitTranspose) {
  Rng rng(4);
  Tensor a = Tensor::Randn(3, 4, 1.0f, rng);
  Tensor b = Tensor::Randn(5, 4, 1.0f, rng);
  Tensor expect = MatMul(a, Transpose(b));
  Tensor got = MatMulTransB(a, b);
  ASSERT_TRUE(got.SameShape(expect));
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expect.data()[i], 1e-4);
  }
}

TEST(TensorTest, TransposeInvolution) {
  Rng rng(5);
  Tensor a = Tensor::Randn(3, 7, 1.0f, rng);
  Tensor tt = Transpose(Transpose(a));
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(tt.data()[i], a.data()[i]);
  }
}

TEST(TensorDeathTest, MatMulShapeMismatchAborts) {
  Tensor a(2, 3);
  Tensor b(2, 3);
  EXPECT_DEATH(MatMul(a, b), "matmul shape mismatch");
}

TEST(TensorDeathTest, ScalarValueRequiresScalar) {
  Tensor t(2, 2);
  EXPECT_DEATH(t.ScalarValue(), "");
}

}  // namespace
}  // namespace fairgen::nn
