// Finite-difference gradient verification for every differentiable op.
//
// Each case builds a small scalar loss from randomly initialized parameter
// tensors and checks analytic gradients from Backward() against central
// differences via CheckGradients().

#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nn/grad_check.h"
#include "nn/ops.h"

namespace fairgen::nn {
namespace {

constexpr double kTolerance = 2e-2;  // float32 + fd eps 1e-3

struct OpCase {
  std::string name;
  // Builds (params, loss_fn) from an rng.
  std::function<std::pair<std::vector<Var>, std::function<Var()>>(Rng&)>
      make;
};

std::pair<std::vector<Var>, std::function<Var()>> Unary(
    Rng& rng, std::function<Var(const Var&)> op, float scale = 1.0f) {
  Var x = MakeParameter(Tensor::Randn(3, 4, scale, rng));
  auto loss = [x, op]() { return MeanAll(op(x)); };
  return {{x}, loss};
}

std::vector<OpCase> AllCases() {
  std::vector<OpCase> cases;
  cases.push_back({"add", [](Rng& rng) {
                     Var a = MakeParameter(Tensor::Randn(3, 4, 1.0f, rng));
                     Var b = MakeParameter(Tensor::Randn(3, 4, 1.0f, rng));
                     auto loss = [a, b]() { return MeanAll(Add(a, b)); };
                     return std::make_pair(std::vector<Var>{a, b},
                                           std::function<Var()>(loss));
                   }});
  cases.push_back({"sub", [](Rng& rng) {
                     Var a = MakeParameter(Tensor::Randn(3, 4, 1.0f, rng));
                     Var b = MakeParameter(Tensor::Randn(3, 4, 1.0f, rng));
                     auto loss = [a, b]() {
                       return MeanAll(Square(Sub(a, b)));
                     };
                     return std::make_pair(std::vector<Var>{a, b},
                                           std::function<Var()>(loss));
                   }});
  cases.push_back({"mul", [](Rng& rng) {
                     Var a = MakeParameter(Tensor::Randn(3, 4, 1.0f, rng));
                     Var b = MakeParameter(Tensor::Randn(3, 4, 1.0f, rng));
                     auto loss = [a, b]() { return MeanAll(Mul(a, b)); };
                     return std::make_pair(std::vector<Var>{a, b},
                                           std::function<Var()>(loss));
                   }});
  cases.push_back({"scale", [](Rng& rng) {
                     return Unary(rng, [](const Var& x) {
                       return Scale(x, -2.5f);
                     });
                   }});
  cases.push_back({"add_scalar", [](Rng& rng) {
                     return Unary(rng, [](const Var& x) {
                       return Square(AddScalar(x, 0.7f));
                     });
                   }});
  cases.push_back(
      {"add_row_broadcast", [](Rng& rng) {
         Var a = MakeParameter(Tensor::Randn(3, 4, 1.0f, rng));
         Var b = MakeParameter(Tensor::Randn(1, 4, 1.0f, rng));
         auto loss = [a, b]() {
           return MeanAll(Square(AddRowBroadcast(a, b)));
         };
         return std::make_pair(std::vector<Var>{a, b},
                               std::function<Var()>(loss));
       }});
  cases.push_back({"tanh", [](Rng& rng) {
                     return Unary(rng, [](const Var& x) {
                       return TanhOp(x);
                     });
                   }});
  cases.push_back({"sigmoid", [](Rng& rng) {
                     return Unary(rng, [](const Var& x) {
                       return SigmoidOp(x);
                     });
                   }});
  cases.push_back({"gelu", [](Rng& rng) {
                     return Unary(rng, [](const Var& x) { return Gelu(x); });
                   }});
  cases.push_back({"square", [](Rng& rng) {
                     return Unary(rng, [](const Var& x) {
                       return Square(x);
                     });
                   }});
  cases.push_back({"log_of_sigmoid", [](Rng& rng) {
                     // Log over strictly positive inputs.
                     return Unary(rng, [](const Var& x) {
                       return LogOp(SigmoidOp(x));
                     });
                   }});
  cases.push_back({"matmul", [](Rng& rng) {
                     Var a = MakeParameter(Tensor::Randn(3, 4, 0.7f, rng));
                     Var b = MakeParameter(Tensor::Randn(4, 5, 0.7f, rng));
                     auto loss = [a, b]() {
                       return MeanAll(Square(MatMulOp(a, b)));
                     };
                     return std::make_pair(std::vector<Var>{a, b},
                                           std::function<Var()>(loss));
                   }});
  cases.push_back({"transpose", [](Rng& rng) {
                     return Unary(rng, [](const Var& x) {
                       return Square(TransposeOp(x));
                     });
                   }});
  cases.push_back({"slice_cols", [](Rng& rng) {
                     return Unary(rng, [](const Var& x) {
                       return Square(SliceCols(x, 1, 2));
                     });
                   }});
  cases.push_back(
      {"concat_cols", [](Rng& rng) {
         Var a = MakeParameter(Tensor::Randn(3, 2, 1.0f, rng));
         Var b = MakeParameter(Tensor::Randn(3, 3, 1.0f, rng));
         auto loss = [a, b]() {
           return MeanAll(Square(ConcatCols({a, b})));
         };
         return std::make_pair(std::vector<Var>{a, b},
                               std::function<Var()>(loss));
       }});
  cases.push_back(
      {"gather_rows", [](Rng& rng) {
         Var table = MakeParameter(Tensor::Randn(6, 3, 1.0f, rng));
         std::vector<uint32_t> ids{0, 2, 2, 5};
         auto loss = [table, ids]() {
           return MeanAll(Square(GatherRows(table, ids)));
         };
         return std::make_pair(std::vector<Var>{table},
                               std::function<Var()>(loss));
       }});
  cases.push_back({"row", [](Rng& rng) {
                     return Unary(rng, [](const Var& x) {
                       return Square(Row(x, 1));
                     });
                   }});
  cases.push_back({"sum_all", [](Rng& rng) {
                     Var x = MakeParameter(Tensor::Randn(3, 4, 1.0f, rng));
                     auto loss = [x]() { return SumAll(Square(x)); };
                     return std::make_pair(std::vector<Var>{x},
                                           std::function<Var()>(loss));
                   }});
  cases.push_back({"softmax_rows", [](Rng& rng) {
                     return Unary(rng, [](const Var& x) {
                       return Square(SoftmaxRows(x));
                     });
                   }});
  cases.push_back({"log_softmax_rows", [](Rng& rng) {
                     return Unary(rng, [](const Var& x) {
                       return Square(LogSoftmaxRows(x));
                     });
                   }});
  cases.push_back(
      {"pick_per_row", [](Rng& rng) {
         Var x = MakeParameter(Tensor::Randn(4, 5, 1.0f, rng));
         std::vector<uint32_t> targets{1, 0, 4, 2};
         auto loss = [x, targets]() {
           return MeanAll(PickPerRow(LogSoftmaxRows(x), targets));
         };
         return std::make_pair(std::vector<Var>{x},
                               std::function<Var()>(loss));
       }});
  cases.push_back(
      {"layer_norm", [](Rng& rng) {
         Var x = MakeParameter(Tensor::Randn(3, 6, 1.0f, rng));
         Var gain = MakeParameter(Tensor::Randn(1, 6, 0.5f, rng));
         Var bias = MakeParameter(Tensor::Randn(1, 6, 0.5f, rng));
         auto loss = [x, gain, bias]() {
           return MeanAll(Square(LayerNormRows(x, gain, bias)));
         };
         return std::make_pair(std::vector<Var>{x, gain, bias},
                               std::function<Var()>(loss));
       }});
  cases.push_back(
      {"weighted_column_sum", [](Rng& rng) {
         Var x = MakeParameter(Tensor::Randn(5, 1, 1.0f, rng));
         std::vector<float> weights{0.5f, -1.0f, 2.0f, 0.0f, 0.25f};
         auto loss = [x, weights]() {
           return WeightedColumnSum(Square(x), weights);
         };
         return std::make_pair(std::vector<Var>{x},
                               std::function<Var()>(loss));
       }});
  cases.push_back(
      {"abs_smooth_region", [](Rng& rng) {
         // Keep values away from the kink at 0 where the subgradient and
         // the finite difference legitimately disagree.
         Var x = MakeParameter(Tensor::Randn(3, 4, 1.0f, rng));
         for (size_t i = 0; i < x->value.size(); ++i) {
           float& v = x->value.data()[i];
           v = v >= 0.0f ? v + 0.5f : v - 0.5f;
         }
         auto loss = [x]() { return MeanAll(AbsOp(x)); };
         return std::make_pair(std::vector<Var>{x},
                               std::function<Var()>(loss));
       }});
  cases.push_back(
      {"relu_smooth_region", [](Rng& rng) {
         Var x = MakeParameter(Tensor::Randn(3, 4, 1.0f, rng));
         for (size_t i = 0; i < x->value.size(); ++i) {
           float& v = x->value.data()[i];
           v = v >= 0.0f ? v + 0.5f : v - 0.5f;
         }
         auto loss = [x]() { return MeanAll(Relu(x)); };
         return std::make_pair(std::vector<Var>{x},
                               std::function<Var()>(loss));
       }});
  cases.push_back(
      {"spmm", [](Rng& rng) {
         // Symmetric 3x3 sparse operator.
         auto s = std::make_shared<SparseMatrix>();
         s->rows = 3;
         s->cols = 3;
         s->offsets = {0, 2, 4, 6};
         s->indices = {0, 1, 0, 2, 1, 2};
         s->values = {0.5f, 0.25f, 0.25f, 0.75f, 0.75f, -0.5f};
         Var x = MakeParameter(Tensor::Randn(3, 4, 1.0f, rng));
         auto loss = [s, x]() { return MeanAll(Square(SpMM(s, x))); };
         return std::make_pair(std::vector<Var>{x},
                               std::function<Var()>(loss));
       }});
  return cases;
}

class OpsGradTest : public testing::TestWithParam<size_t> {};

TEST_P(OpsGradTest, AnalyticMatchesNumeric) {
  std::vector<OpCase> cases = AllCases();
  const OpCase& c = cases[GetParam()];
  SCOPED_TRACE(c.name);
  Rng rng(1234 + GetParam());
  auto [params, loss_fn] = c.make(rng);
  Rng check_rng(77);
  GradCheckResult result =
      CheckGradients(loss_fn, params, /*checks_per_param=*/8, check_rng);
  EXPECT_GT(result.checks, 0u);
  EXPECT_LT(result.max_rel_error, kTolerance)
      << c.name << ": max_abs_error=" << result.max_abs_error;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OpsGradTest, testing::Range<size_t>(0, 26),
    [](const testing::TestParamInfo<size_t>& info) {
      static const auto* names = new std::vector<std::string>([] {
        std::vector<std::string> out;
        for (const OpCase& c : AllCases()) out.push_back(c.name);
        return out;
      }());
      return (*names)[info.param];
    });

TEST(OpsGradSanity, CaseCountMatchesRange) {
  EXPECT_EQ(AllCases().size(), 26u);
}

}  // namespace
}  // namespace fairgen::nn
