#include "nn/lstm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/grad_check.h"
#include "nn/optimizer.h"

namespace fairgen::nn {
namespace {

LstmLMConfig SmallConfig() {
  LstmLMConfig cfg;
  cfg.vocab_size = 10;
  cfg.dim = 12;
  cfg.hidden_dim = 12;
  return cfg;
}

TEST(LstmCellTest, StepShapes) {
  Rng rng(1);
  LstmCell cell(6, 8, rng);
  Var x = MakeConstant(Tensor::Randn(1, 6, 1.0f, rng));
  Var h = cell.ZeroState();
  Var c = cell.ZeroState();
  auto [h2, c2] = cell.Step(x, h, c);
  EXPECT_EQ(h2->cols(), 8u);
  EXPECT_EQ(c2->cols(), 8u);
  EXPECT_EQ(cell.Parameters().size(), 3u);
}

TEST(LstmCellTest, StateValuesBounded) {
  Rng rng(2);
  LstmCell cell(4, 6, rng);
  Var h = cell.ZeroState();
  Var c = cell.ZeroState();
  for (int step = 0; step < 20; ++step) {
    Var x = MakeConstant(Tensor::Randn(1, 4, 2.0f, rng));
    std::tie(h, c) = cell.Step(x, h, c);
    for (size_t i = 0; i < h->value.size(); ++i) {
      EXPECT_LE(std::abs(h->value.data()[i]), 1.0f + 1e-5);
    }
  }
}

TEST(LstmCellTest, GradCheckThroughTwoSteps) {
  Rng rng(3);
  LstmCell cell(4, 5, rng);
  Var x1 = MakeConstant(Tensor::Randn(1, 4, 1.0f, rng));
  Var x2 = MakeConstant(Tensor::Randn(1, 4, 1.0f, rng));
  auto loss = [&]() {
    Var h = cell.ZeroState();
    Var c = cell.ZeroState();
    std::tie(h, c) = cell.Step(x1, h, c);
    std::tie(h, c) = cell.Step(x2, h, c);
    return MeanAll(Square(h));
  };
  Rng check_rng(5);
  auto result = CheckGradients(loss, cell.Parameters(), 6, check_rng);
  EXPECT_LT(result.max_rel_error, 3e-2);
}

TEST(LstmLMTest, WalkNllFinite) {
  Rng rng(4);
  LstmLM lm(SmallConfig(), rng);
  Var nll = lm.WalkNll({0, 1, 2, 3});
  EXPECT_TRUE(std::isfinite(nll->value.ScalarValue()));
  EXPECT_GT(nll->value.ScalarValue(), 0.0f);
}

TEST(LstmLMTest, InitialNllNearUniform) {
  Rng rng(5);
  LstmLM lm(SmallConfig(), rng);
  float nll = lm.WalkNll({0, 1, 2, 3, 4, 5})->value.ScalarValue();
  // Untrained model should be near log(vocab) = log(10) = 2.30.
  EXPECT_NEAR(nll, std::log(10.0f), 0.7f);
}

TEST(LstmLMTest, SampleWalkShape) {
  Rng rng(6);
  LstmLM lm(SmallConfig(), rng);
  std::vector<uint32_t> walk = lm.SampleWalk(2, 7, rng);
  EXPECT_EQ(walk.size(), 7u);
  EXPECT_EQ(walk[0], 2u);
  for (uint32_t v : walk) EXPECT_LT(v, 10u);
}

TEST(LstmLMTest, SampleNextAgreesWithStatefulSampling) {
  // Greedy next-token choice must be identical between the stateless
  // SampleNext path and the stateful SampleWalk path.
  Rng rng(7);
  LstmLM lm(SmallConfig(), rng);
  std::vector<uint32_t> prefix{1};
  Rng a(42);
  Rng b(42);
  uint32_t via_next = lm.SampleNext(prefix, a, 0.01f);
  std::vector<uint32_t> via_walk = lm.SampleWalk(1, 2, b, 0.01f);
  EXPECT_EQ(via_next, via_walk[1]);
}

TEST(LstmLMTest, GradCheck) {
  Rng rng(8);
  LstmLMConfig cfg;
  cfg.vocab_size = 6;
  cfg.dim = 5;
  cfg.hidden_dim = 5;
  LstmLM lm(cfg, rng);
  std::vector<uint32_t> walk{0, 2, 4, 1};
  auto loss = [&]() { return lm.WalkNll(walk); };
  Rng check_rng(9);
  auto result = CheckGradients(loss, lm.Parameters(), 4, check_rng);
  EXPECT_LT(result.max_rel_error, 5e-2);
}

TEST(LstmLMTest, OverfitsTinyCorpus) {
  Rng rng(10);
  LstmLM lm(SmallConfig(), rng);
  std::vector<uint32_t> walk{0, 1, 2, 3, 4};
  Adam optim(lm.Parameters(), 1e-2f);
  float initial = lm.WalkNll(walk)->value.ScalarValue();
  for (int step = 0; step < 200; ++step) {
    optim.ZeroGrad();
    Backward(lm.WalkNll(walk));
    optim.Step();
  }
  float final = lm.WalkNll(walk)->value.ScalarValue();
  EXPECT_LT(final, initial * 0.2f);
}

}  // namespace
}  // namespace fairgen::nn
