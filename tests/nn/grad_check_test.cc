// Tests of the gradient checker itself — including the negative control:
// it must FLAG a deliberately wrong backward rule, otherwise every other
// grad test in this suite is meaningless.

#include <gtest/gtest.h>

#include "nn/grad_check.h"
#include "nn/ops.h"

namespace fairgen::nn {
namespace {

// An op with an intentionally wrong backward: forward y = 2x, backward
// claims dy/dx = 3.
Var BuggyDouble(const Var& x) {
  Tensor out = x->value;
  out.Scale(2.0f);
  return internal::MakeOpNode(
      std::move(out), {x},
      [](Node& n) { n.parents[0]->grad.AddScaled(n.grad, 3.0f); },
      "buggy_double");
}

TEST(GradCheckTest, AcceptsCorrectGradient) {
  Rng rng(1);
  Var x = MakeParameter(Tensor::Randn(3, 3, 1.0f, rng));
  auto loss = [&]() { return MeanAll(Square(x)); };
  Rng check_rng(2);
  auto result = CheckGradients(loss, {x}, 9, check_rng);
  EXPECT_LT(result.max_rel_error, 1e-2);
  EXPECT_EQ(result.checks, 9u);
}

TEST(GradCheckTest, FlagsWrongGradient) {
  Rng rng(3);
  Var x = MakeParameter(Tensor::Randn(3, 3, 1.0f, rng));
  auto loss = [&]() { return MeanAll(BuggyDouble(x)); };
  Rng check_rng(4);
  auto result = CheckGradients(loss, {x}, 9, check_rng);
  // Analytic 3/9, numeric 2/9: relative error (1/9)/(5/9) = 0.2.
  EXPECT_GT(result.max_rel_error, 0.15);
}

TEST(GradCheckTest, FlagsMissingGradient) {
  // Forward correct, backward does nothing: analytic 0 vs numeric 2/9.
  auto silent = [](const Var& x) {
    Tensor out = x->value;
    out.Scale(2.0f);
    return internal::MakeOpNode(std::move(out), {x}, [](Node&) {},
                                "silent_double");
  };
  Rng rng(5);
  Var x = MakeParameter(Tensor::Randn(3, 3, 1.0f, rng));
  auto loss = [&]() { return MeanAll(silent(x)); };
  Rng check_rng(6);
  auto result = CheckGradients(loss, {x}, 9, check_rng);
  EXPECT_GT(result.max_rel_error, 0.9);  // |0-n|/(0+n) = 1
}

TEST(GradCheckTest, ChecksAreCappedByParameterSize) {
  Rng rng(7);
  Var x = MakeParameter(Tensor::Randn(1, 2, 1.0f, rng));
  auto loss = [&]() { return MeanAll(Square(x)); };
  Rng check_rng(8);
  auto result = CheckGradients(loss, {x}, 100, check_rng);
  EXPECT_EQ(result.checks, 2u);
}

TEST(GradCheckTest, MultipleParamsAllProbed) {
  Rng rng(9);
  Var a = MakeParameter(Tensor::Randn(2, 2, 1.0f, rng));
  Var b = MakeParameter(Tensor::Randn(2, 2, 1.0f, rng));
  auto loss = [&]() { return MeanAll(Square(Add(a, b))); };
  Rng check_rng(10);
  auto result = CheckGradients(loss, {a, b}, 4, check_rng);
  EXPECT_EQ(result.checks, 8u);
  EXPECT_LT(result.max_rel_error, 1e-2);
}

}  // namespace
}  // namespace fairgen::nn
