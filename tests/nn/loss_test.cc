#include "nn/loss.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/grad_check.h"

namespace fairgen::nn {
namespace {

TEST(SequenceNllTest, UniformLogitsGiveLogVocab) {
  Var logits = MakeParameter(Tensor(3, 5));  // all-zero logits = uniform
  Var nll = SequenceNll(logits, {0, 1, 2});
  EXPECT_NEAR(nll->value.ScalarValue(), std::log(5.0f), 1e-5);
}

TEST(SequenceNllTest, ConfidentCorrectPredictionNearZero) {
  Tensor t(2, 3);
  t.at(0, 1) = 20.0f;
  t.at(1, 2) = 20.0f;
  Var logits = MakeParameter(t);
  Var nll = SequenceNll(logits, {1, 2});
  EXPECT_LT(nll->value.ScalarValue(), 1e-3);
}

TEST(SequenceNllTest, ConfidentWrongPredictionLarge) {
  Tensor t(1, 3);
  t.at(0, 0) = 20.0f;
  Var logits = MakeParameter(t);
  Var nll = SequenceNll(logits, {2});
  EXPECT_GT(nll->value.ScalarValue(), 10.0f);
}

TEST(SequenceNllTest, GradCheck) {
  Rng rng(1);
  Var logits = MakeParameter(Tensor::Randn(4, 6, 1.0f, rng));
  std::vector<uint32_t> targets{0, 5, 2, 2};
  auto loss = [&]() { return SequenceNll(logits, targets); };
  Rng check_rng(2);
  auto result = CheckGradients(loss, {logits}, 10, check_rng);
  EXPECT_LT(result.max_rel_error, 2e-2);
}

TEST(NegativeWalkPenaltyTest, ZeroWhenBelowFloor) {
  // All-uniform logits give log p = -log V = floor, so relu(0) = 0.
  Var logits = MakeParameter(Tensor(2, 4));
  float floor = -std::log(4.0f);
  Var penalty = NegativeWalkPenalty(logits, {0, 1}, floor);
  EXPECT_NEAR(penalty->value.ScalarValue(), 0.0f, 1e-5);
}

TEST(NegativeWalkPenaltyTest, PositiveWhenModelConfident) {
  Tensor t(1, 4);
  t.at(0, 2) = 10.0f;  // model assigns target 2 high probability
  Var logits = MakeParameter(t);
  float floor = -std::log(4.0f);
  Var penalty = NegativeWalkPenalty(logits, {2}, floor);
  EXPECT_GT(penalty->value.ScalarValue(), 0.5f);
}

TEST(NegativeWalkPenaltyTest, GradPushesProbabilityDown) {
  Rng rng(3);
  Var logits = MakeParameter(Tensor::Randn(1, 4, 0.1f, rng));
  logits->value.at(0, 1) = 3.0f;
  ZeroGrad({logits});
  Var penalty =
      NegativeWalkPenalty(logits, {1}, -std::log(4.0f));
  Backward(penalty);
  // Gradient w.r.t. the over-confident logit must be positive (gradient
  // descent will lower it).
  EXPECT_GT(logits->grad.at(0, 1), 0.0f);
}

TEST(SoftmaxCrossEntropyTest, MatchesManualComputation) {
  Tensor t(1, 2);
  t.at(0, 0) = 1.0f;
  t.at(0, 1) = -1.0f;
  Var logits = MakeParameter(t);
  Var ce = SoftmaxCrossEntropy(logits, {0});
  float expected = std::log(1.0f + std::exp(-2.0f));
  EXPECT_NEAR(ce->value.ScalarValue(), expected, 1e-5);
}

TEST(WeightedSoftmaxCrossEntropyTest, WeightsScaleContributions) {
  Tensor t(2, 2);  // uniform logits: per-row CE = log 2
  Var logits = MakeParameter(t);
  Var weighted =
      WeightedSoftmaxCrossEntropy(logits, {0, 1}, {2.0f, 0.0f});
  EXPECT_NEAR(weighted->value.ScalarValue(), 2.0f * std::log(2.0f), 1e-5);
}

TEST(WeightedSoftmaxCrossEntropyTest, CostSensitiveGradientRatio) {
  // The Eq. 9 mechanism: a protected example with a much larger xi must
  // receive a proportionally larger gradient.
  Rng rng(4);
  Tensor t = Tensor::Randn(2, 3, 0.5f, rng);
  Var a = MakeParameter(t);
  Var b = MakeParameter(t);
  ZeroGrad({a});
  ZeroGrad({b});
  Backward(WeightedSoftmaxCrossEntropy(a, {0, 1}, {1.0f, 0.0f}));
  Backward(WeightedSoftmaxCrossEntropy(b, {0, 1}, {10.0f, 0.0f}));
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(b->grad.at(0, c), 10.0f * a->grad.at(0, c), 1e-4);
  }
}

TEST(BceWithLogitsTest, MatchesClosedForm) {
  Tensor t(1, 2);
  t.at(0, 0) = 0.0f;   // p = 0.5
  t.at(0, 1) = 2.0f;   // p = sigmoid(2)
  Var logits = MakeParameter(t);
  Var loss = BceWithLogits(logits, {1.0f, 0.0f});
  float expected =
      0.5f * (std::log(2.0f) + (2.0f + std::log1p(std::exp(-2.0f))));
  EXPECT_NEAR(loss->value.ScalarValue(), expected, 1e-5);
}

TEST(BceWithLogitsTest, GradCheck) {
  Rng rng(5);
  Var logits = MakeParameter(Tensor::Randn(3, 3, 1.0f, rng));
  std::vector<float> targets{1, 0, 0, 1, 1, 0, 0, 0, 1};
  auto loss = [&]() { return BceWithLogits(logits, targets); };
  Rng check_rng(6);
  auto result = CheckGradients(loss, {logits}, 9, check_rng);
  EXPECT_LT(result.max_rel_error, 2e-2);
}

TEST(BceWithLogitsTest, StableAtExtremeLogits) {
  Tensor t(1, 2);
  t.at(0, 0) = 100.0f;
  t.at(0, 1) = -100.0f;
  Var logits = MakeParameter(t);
  Var loss = BceWithLogits(logits, {1.0f, 0.0f});
  EXPECT_TRUE(std::isfinite(loss->value.ScalarValue()));
  EXPECT_NEAR(loss->value.ScalarValue(), 0.0f, 1e-5);
}

}  // namespace
}  // namespace fairgen::nn
