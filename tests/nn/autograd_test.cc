#include "nn/autograd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/ops.h"

namespace fairgen::nn {
namespace {

TEST(AutogradTest, LeafProperties) {
  Var p = MakeParameter(Tensor::Scalar(1.0f));
  Var c = MakeConstant(Tensor::Scalar(2.0f));
  EXPECT_TRUE(p->requires_grad);
  EXPECT_FALSE(c->requires_grad);
  EXPECT_TRUE(p->parents.empty());
}

TEST(AutogradTest, SimpleChainGradient) {
  // y = 3 * x, dy/dx = 3.
  Var x = MakeParameter(Tensor::Scalar(2.0f));
  Var y = Scale(x, 3.0f);
  ZeroGrad({x});
  Backward(y);
  EXPECT_FLOAT_EQ(y->value.ScalarValue(), 6.0f);
  EXPECT_FLOAT_EQ(x->grad.ScalarValue(), 3.0f);
}

TEST(AutogradTest, GradAccumulatesAcrossBackwardCalls) {
  Var x = MakeParameter(Tensor::Scalar(1.0f));
  ZeroGrad({x});
  Backward(Scale(x, 2.0f));
  Backward(Scale(x, 5.0f));
  EXPECT_FLOAT_EQ(x->grad.ScalarValue(), 7.0f);
}

TEST(AutogradTest, ZeroGradResets) {
  Var x = MakeParameter(Tensor::Scalar(1.0f));
  ZeroGrad({x});
  Backward(Scale(x, 2.0f));
  ZeroGrad({x});
  EXPECT_FLOAT_EQ(x->grad.ScalarValue(), 0.0f);
}

TEST(AutogradTest, DiamondGraphSumsPaths) {
  // y = x*x + x*x via shared subexpressions: dy/dx through both paths.
  Var x = MakeParameter(Tensor::Scalar(3.0f));
  Var sq = Mul(x, x);        // 9, d/dx = 2x = 6
  Var y = Add(sq, sq);       // 18, dy/dsq = 2
  ZeroGrad({x});
  Backward(y);
  EXPECT_FLOAT_EQ(y->value.ScalarValue(), 18.0f);
  EXPECT_FLOAT_EQ(x->grad.ScalarValue(), 12.0f);
}

TEST(AutogradTest, ConstantsReceiveNoGradient) {
  Var x = MakeParameter(Tensor::Scalar(2.0f));
  Var c = MakeConstant(Tensor::Scalar(4.0f));
  Var y = Mul(x, c);
  ZeroGrad({x});
  Backward(y);
  EXPECT_FLOAT_EQ(x->grad.ScalarValue(), 4.0f);
  // Constant's grad buffer stays empty or zero.
  EXPECT_TRUE(c->grad.empty() || c->grad.ScalarValue() == 0.0f);
}

TEST(AutogradTest, NoGradGraphIsCheap) {
  Var a = MakeConstant(Tensor::Scalar(1.0f));
  Var b = MakeConstant(Tensor::Scalar(2.0f));
  Var y = Add(a, b);
  EXPECT_FALSE(y->requires_grad);
  EXPECT_TRUE(y->parents.empty());  // op node skips parent tracking
  Backward(y);                      // no-op, must not crash
}

TEST(AutogradTest, DeepChain) {
  Var x = MakeParameter(Tensor::Scalar(1.0f));
  Var y = x;
  for (int i = 0; i < 100; ++i) {
    y = Scale(y, 1.01f);
  }
  ZeroGrad({x});
  Backward(y);
  float expected = std::pow(1.01f, 100.0f);
  EXPECT_NEAR(x->grad.ScalarValue(), expected, expected * 1e-4);
}

TEST(AutogradTest, GradNormSquared) {
  Var x = MakeParameter(Tensor(1, 2, std::vector<float>{1.0f, 1.0f}));
  ZeroGrad({x});
  Backward(SumAll(Scale(x, 3.0f)));
  EXPECT_NEAR(GradNormSquared({x}), 18.0, 1e-5);
}

TEST(AutogradDeathTest, NonScalarRootRejected) {
  Var x = MakeParameter(Tensor(2, 2));
  Var y = Scale(x, 1.0f);
  EXPECT_DEATH(Backward(y), "scalar");
}

TEST(AutogradTest, InteriorGradsResetBetweenBackwards) {
  // Reusing an interior node across two Backward calls must not double
  // count its stale gradient.
  Var x = MakeParameter(Tensor::Scalar(2.0f));
  Var mid = Scale(x, 2.0f);
  Var y1 = Scale(mid, 1.0f);
  Var y2 = Scale(mid, 1.0f);
  ZeroGrad({x});
  Backward(y1);
  Backward(y2);
  // Each backward contributes 2; total 4.
  EXPECT_FLOAT_EQ(x->grad.ScalarValue(), 4.0f);
}

}  // namespace
}  // namespace fairgen::nn
