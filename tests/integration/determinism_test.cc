// Thread-count determinism suite: fairness metrics must be bitwise-stable
// across runs (FAROS), so every parallel kernel must produce results at
// num_threads = N that are bit-identical to num_threads = 1 under a fixed
// seed. These tests pin that contract for the edge-score accumulators, the
// MMD statistics, the triangle kernels, the walk samplers, and the
// node2vec embeddings.

#include <algorithm>
#include <gtest/gtest.h>

#include "common/memprobe.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/prof.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "embed/node2vec.h"
#include "generators/er.h"
#include "generators/netgan.h"
#include "graph/triangles.h"
#include "stats/mmd.h"

namespace fairgen {
namespace {

// Sorted, comparable view of an accumulator's scored edges.
std::vector<std::pair<Edge, double>> SortedScores(
    std::vector<std::pair<Edge, double>> scores) {
  std::sort(scores.begin(), scores.end(),
            [](const auto& a, const auto& b) {
              return std::tie(a.first.u, a.first.v) <
                     std::tie(b.first.u, b.first.v);
            });
  return scores;
}

void ExpectBitIdentical(const std::vector<std::pair<Edge, double>>& a,
                        const std::vector<std::pair<Edge, double>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first.u, b[i].first.u);
    EXPECT_EQ(a[i].first.v, b[i].first.v);
    EXPECT_EQ(a[i].second, b[i].second);  // exact, not NEAR
  }
}

// Runs `fn(threads)` at 1/2/4 threads and checks the 2- and 4-thread
// results against the serial one.
template <typename Fn>
void ExpectSameAcrossThreadCounts(Fn&& fn) {
  auto serial = fn(1u);
  EXPECT_NO_FATAL_FAILURE(ExpectBitIdentical(fn(2u), serial));
  EXPECT_NO_FATAL_FAILURE(ExpectBitIdentical(fn(4u), serial));
}

Graph TestGraph(uint32_t seed, uint32_t nodes = 60, uint32_t edges = 300) {
  Rng rng(seed);
  auto g = SampleErdosRenyi(nodes, edges, rng);
  g.status().CheckOK();
  return *std::move(g);
}

TEST(DeterminismTest, AccumulateWalkScoresIsThreadCountInvariant) {
  Graph graph = TestGraph(11);
  RandomWalker walker(graph);
  ExpectSameAcrossThreadCounts([&](uint32_t threads) {
    Rng rng(42);
    EdgeScoreAccumulator acc = AccumulateWalkScores(
        graph.num_nodes(), /*target_transitions=*/5000, threads, rng,
        [&](Rng& walk_rng) {
          return walker.UniformWalk(walker.SampleStartNode(walk_rng), 10,
                                    walk_rng);
        });
    return SortedScores(acc.ScoredEdges());
  });
}

TEST(DeterminismTest, NetGanEdgeScoresAreThreadCountInvariant) {
  Rng data_rng(3);
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 50;
  cfg.num_edges = 250;
  auto data = GenerateSynthetic(cfg, data_rng);
  ASSERT_TRUE(data.ok());

  ExpectSameAcrossThreadCounts([&](uint32_t threads) {
    NetGanConfig netgan;
    netgan.train.num_walks = 40;
    netgan.train.epochs = 1;
    netgan.train.gen_transition_multiplier = 4.0;
    netgan.train.num_threads = threads;
    netgan.dim = 12;
    netgan.hidden_dim = 12;
    NetGanGenerator gen(netgan);
    Rng fit_rng(7);
    EXPECT_TRUE(gen.Fit(data->graph, fit_rng).ok());
    Rng score_rng(8);
    auto scored = gen.ScoreEdges(score_rng);
    EXPECT_TRUE(scored.ok());
    return SortedScores(*std::move(scored));
  });
}

TEST(DeterminismTest, FairGenEdgeScoresAreThreadCountInvariant) {
  Rng data_rng(5);
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 40;
  cfg.num_edges = 160;
  cfg.num_classes = 2;
  auto data = GenerateSynthetic(cfg, data_rng);
  ASSERT_TRUE(data.ok());

  ExpectSameAcrossThreadCounts([&](uint32_t threads) {
    FairGenConfig fairgen;
    fairgen.num_walks = 40;
    fairgen.self_paced_cycles = 1;
    fairgen.generator_epochs = 1;
    fairgen.gen_transition_multiplier = 2.0;
    fairgen.embedding_dim = 16;
    fairgen.ffn_dim = 32;
    fairgen.num_threads = threads;
    FairGenTrainer trainer(fairgen);
    Rng fit_rng(17);
    EXPECT_TRUE(trainer.Fit(data->graph, fit_rng).ok());
    Rng score_rng(18);
    auto scored = trainer.ScoreEdges(score_rng);
    EXPECT_TRUE(scored.ok());
    return SortedScores(*std::move(scored));
  });
}

TEST(DeterminismTest, MmdIsThreadCountInvariant) {
  Graph a = TestGraph(21, 300, 1200);
  Graph b = TestGraph(22, 300, 1500);

  uint32_t saved = DefaultNumThreads();
  SetDefaultNumThreads(1);
  auto degree_serial = DegreeMmd(a, b);
  auto clustering_serial = ClusteringMmd(a, b);
  ASSERT_TRUE(degree_serial.ok());
  ASSERT_TRUE(clustering_serial.ok());
  for (uint32_t threads : {2u, 4u}) {
    SetDefaultNumThreads(threads);
    auto degree = DegreeMmd(a, b);
    auto clustering = ClusteringMmd(a, b);
    ASSERT_TRUE(degree.ok());
    ASSERT_TRUE(clustering.ok());
    EXPECT_EQ(*degree, *degree_serial) << threads << " threads";
    EXPECT_EQ(*clustering, *clustering_serial) << threads << " threads";
  }
  SetDefaultNumThreads(saved);
}

TEST(DeterminismTest, TrianglesAreThreadCountInvariant) {
  Graph g = TestGraph(31, 400, 2400);
  uint32_t saved = DefaultNumThreads();
  SetDefaultNumThreads(1);
  uint64_t total_serial = CountTriangles(g);
  std::vector<uint64_t> per_node_serial = PerNodeTriangles(g);
  for (uint32_t threads : {2u, 4u}) {
    SetDefaultNumThreads(threads);
    EXPECT_EQ(CountTriangles(g), total_serial);
    EXPECT_EQ(PerNodeTriangles(g), per_node_serial);
  }
  SetDefaultNumThreads(saved);
  // Cross-check the two kernels: per-node counts triple-count each
  // triangle (once per corner).
  uint64_t corner_sum = 0;
  for (uint64_t t : per_node_serial) corner_sum += t;
  EXPECT_EQ(corner_sum, 3 * total_serial);
}

TEST(DeterminismTest, WalkSamplersAreThreadCountInvariant) {
  Graph g = TestGraph(41);
  RandomWalker uniform(g);
  Node2VecWalker biased(g, Node2VecParams{0.5, 2.0});
  for (uint32_t threads : {2u, 4u}) {
    Rng serial_rng(9);
    Rng thread_rng(9);
    EXPECT_EQ(uniform.SampleUniformWalks(100, 8, serial_rng, 1),
              uniform.SampleUniformWalks(100, 8, thread_rng, threads))
        << threads << " threads";
    Rng serial_rng2(10);
    Rng thread_rng2(10);
    EXPECT_EQ(biased.SampleWalks(100, 8, serial_rng2, 1),
              biased.SampleWalks(100, 8, thread_rng2, threads))
        << threads << " threads";
  }
}

// Instrumentation is observation-only: with metrics *and* tracing enabled
// the pipeline must produce outputs bit-identical to a run with both
// disabled, at every thread count. This is the contract that lets
// production runs keep telemetry on without invalidating the bitwise
// determinism guarantees above.
TEST(DeterminismTest, InstrumentationDoesNotPerturbOutputs) {
  Graph graph = TestGraph(51);
  RandomWalker walker(graph);
  Graph other = TestGraph(52);

  struct Observed {
    std::vector<std::pair<Edge, double>> scores;
    std::vector<Walk> walks;
    double degree_mmd = 0.0;
  };
  auto run = [&](uint32_t threads) {
    Observed out;
    // Memory probing at stage boundaries is part of the instrumentation
    // under test: it reads /proc and writes gauges/series, and must be as
    // output-neutral as the metrics and tracer mutations around it.
    memprobe::Sample("determinism.start");
    Rng acc_rng(42);
    EdgeScoreAccumulator acc = AccumulateWalkScores(
        graph.num_nodes(), /*target_transitions=*/4000, threads, acc_rng,
        [&](Rng& walk_rng) {
          return walker.UniformWalk(walker.SampleStartNode(walk_rng), 10,
                                    walk_rng);
        });
    out.scores = SortedScores(acc.ScoredEdges());
    memprobe::Sample("determinism.accumulated");
    Rng walk_rng(43);
    out.walks = walker.SampleUniformWalks(80, 8, walk_rng, threads);
    uint32_t saved = DefaultNumThreads();
    SetDefaultNumThreads(threads);
    auto mmd = DegreeMmd(graph, other);
    SetDefaultNumThreads(saved);
    EXPECT_TRUE(mmd.ok());
    out.degree_mmd = *mmd;
    memprobe::Sample("determinism.end");
    return out;
  };

  const bool metrics_before = metrics::Enabled();
  const bool trace_before = trace::Tracer::Global().enabled();
  for (uint32_t threads : {1u, 2u, 4u}) {
    metrics::SetEnabled(true);
    trace::Tracer::Global().SetEnabled(true);
    Observed on = run(threads);
    EXPECT_GT(trace::Tracer::Global().size(), 0u)
        << "tracing was enabled but recorded nothing";

    metrics::SetEnabled(false);
    trace::Tracer::Global().SetEnabled(false);
    Observed off = run(threads);

    ExpectBitIdentical(on.scores, off.scores);
    EXPECT_EQ(on.walks, off.walks) << threads << " threads";
    EXPECT_EQ(on.degree_mmd, off.degree_mmd) << threads << " threads";
  }
  metrics::SetEnabled(metrics_before);
  trace::Tracer::Global().SetEnabled(trace_before);
  trace::Tracer::Global().Clear();
}

// The sampling profiler extends the observation-only contract to SIGPROF
// interruption: with the profiler running (stack sampling at a high rate
// plus hardware-counter reads at every span boundary), outputs must be
// bit-identical to an unprofiled run at every thread count. The profiler
// draws no Rng, uses SA_RESTART (no EINTR leakage into the pipeline) and
// only its own atomics — this test pins all three.
TEST(DeterminismTest, ProfilerDoesNotPerturbOutputs) {
  Graph graph = TestGraph(53);
  RandomWalker walker(graph);
  Graph other = TestGraph(54);

  auto run = [&](uint32_t threads) {
    std::vector<std::pair<Edge, double>> out;
    Rng acc_rng(44);
    EdgeScoreAccumulator acc = AccumulateWalkScores(
        graph.num_nodes(), /*target_transitions=*/4000, threads, acc_rng,
        [&](Rng& walk_rng) {
          return walker.UniformWalk(walker.SampleStartNode(walk_rng), 10,
                                    walk_rng);
        });
    return SortedScores(acc.ScoredEdges());
  };

  // Tracing on so ScopedSpan actually exercises the hardware-counter
  // read path while the profiler is running.
  const bool trace_before = trace::Tracer::Global().enabled();
  trace::Tracer::Global().SetEnabled(true);
  for (uint32_t threads : {1u, 2u, 4u}) {
    prof::ProfilerOptions options;
    options.hz = 997;
    ASSERT_TRUE(prof::Profiler::Global().Start(options).ok());
    auto profiled = run(threads);
    prof::Profiler::Global().Stop();

    auto unprofiled = run(threads);
    ExpectBitIdentical(profiled, unprofiled);
  }
  trace::Tracer::Global().SetEnabled(trace_before);
  trace::Tracer::Global().Clear();
}

// The telemetry publisher extends the observation-only contract to a
// *concurrent* observer: a background thread snapshotting the registry,
// memprobe, and tracer every few milliseconds while FairGen trains must
// not perturb a single output bit at any thread count. This is what makes
// `--telemetry-dir` safe to leave on for real runs.
TEST(DeterminismTest, TelemetryPublisherDoesNotPerturbOutputs) {
  Rng data_rng(13);
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 40;
  cfg.num_edges = 160;
  cfg.num_classes = 2;
  auto data = GenerateSynthetic(cfg, data_rng);
  ASSERT_TRUE(data.ok());

  auto run = [&](uint32_t threads) {
    FairGenConfig fairgen;
    fairgen.num_walks = 40;
    fairgen.self_paced_cycles = 2;
    fairgen.generator_epochs = 1;
    fairgen.gen_transition_multiplier = 2.0;
    fairgen.embedding_dim = 16;
    fairgen.ffn_dim = 32;
    fairgen.num_threads = threads;
    FairGenTrainer trainer(fairgen);
    Rng fit_rng(29);
    EXPECT_TRUE(trainer.Fit(data->graph, fit_rng).ok());
    Rng score_rng(30);
    auto scored = trainer.ScoreEdges(score_rng);
    EXPECT_TRUE(scored.ok());
    return SortedScores(*std::move(scored));
  };

  const bool metrics_before = metrics::Enabled();
  metrics::SetEnabled(true);
  for (uint32_t threads : {1u, 2u, 4u}) {
    // Publisher on: snapshots race the training loop at a 5 ms cadence.
    telemetry::PublisherOptions options;
    options.dir = testing::TempDir() + "/fairgen_determinism_telemetry";
    options.interval_ms = 5;
    telemetry::Publisher publisher(options);
    ASSERT_TRUE(publisher.Init().ok());
    auto with_publisher = run(threads);
    EXPECT_GT(publisher.snapshots_written(), 0u);
    publisher.Stop(0);

    auto without_publisher = run(threads);
    ExpectBitIdentical(with_publisher, without_publisher);
  }
  metrics::SetEnabled(metrics_before);
}

TEST(DeterminismTest, Node2VecEmbeddingsAreThreadCountInvariant) {
  Rng data_rng(6);
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 50;
  cfg.num_edges = 200;
  auto data = GenerateSynthetic(cfg, data_rng);
  ASSERT_TRUE(data.ok());

  auto train = [&](uint32_t threads) {
    Node2VecConfig n2v;
    n2v.dim = 16;
    n2v.walks_per_node = 2;
    n2v.walk_length = 10;
    n2v.epochs = 1;
    n2v.num_threads = threads;
    Rng rng(77);
    return Node2VecModel::Train(data->graph, n2v, rng);
  };
  Node2VecModel serial = train(1);
  for (uint32_t threads : {2u, 4u}) {
    Node2VecModel threaded = train(threads);
    ASSERT_EQ(threaded.embeddings().size(), serial.embeddings().size());
    for (size_t i = 0; i < serial.embeddings().size(); ++i) {
      ASSERT_EQ(threaded.embeddings().data()[i],
                serial.embeddings().data()[i])
          << "component " << i << " at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace fairgen
