// Golden-schema regression test for `fairgen ... --metrics-out=<path>`:
// runs the real CLI binary on a small seeded demo (edges + few-shot labels
// + protected set) and validates the emitted metrics JSON against the
// checked-in key schema in tests/golden/metrics_schema.txt. A missing key
// means an instrumentation point was renamed or dropped — a breaking
// change for telemetry consumers that must be made deliberately (update
// the schema file in the same commit).
//
// The CLI and schema paths are injected by tests/CMakeLists.txt as the
// FAIRGEN_CLI_PATH / FAIRGEN_METRICS_SCHEMA_PATH compile definitions.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/strings.h"
#include "data/synthetic.h"
#include "graph/edgelist.h"

namespace fairgen {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class CliMetricsTest : public testing::Test {
 protected:
  std::string TempPath(const std::string& suffix) {
    std::string path = testing::TempDir() + "/fairgen_cli_metrics_" + suffix;
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& p : paths_) std::remove(p.c_str());
  }

  std::vector<std::string> paths_;
};

TEST_F(CliMetricsTest, GenerateEmitsEverySchemaKey) {
  // Seeded demo inputs: a small planted-partition graph with labels and a
  // protected group, written the way a user would invoke the CLI.
  Rng rng(19);
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 60;
  cfg.num_edges = 280;
  cfg.num_classes = 2;
  cfg.protected_size = 12;
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok()) << data.status().ToString();

  std::string edges_path = TempPath("edges.txt");
  ASSERT_TRUE(SaveEdgeList(data->graph, edges_path).ok());

  std::string labels_path = TempPath("labels.txt");
  {
    std::ofstream out(labels_path);
    std::vector<int32_t> few_shot = FewShotLabels(*data, 5, rng);
    for (NodeId v = 0; v < data->graph.num_nodes(); ++v) {
      if (few_shot[v] != kUnlabeled) out << v << ' ' << few_shot[v] << '\n';
    }
  }
  std::string protected_path = TempPath("protected.txt");
  {
    std::ofstream out(protected_path);
    for (NodeId v : data->protected_set) out << v << '\n';
  }

  std::string out_path = TempPath("generated.txt");
  std::string metrics_path = TempPath("metrics.json");
  std::string trace_path = TempPath("trace.json");

  std::string command = std::string(FAIRGEN_CLI_PATH) + " generate " +
                        edges_path + " --model=fairgen --labels=" +
                        labels_path + " --protected=" + protected_path +
                        " --out=" + out_path + " --seed=7 --walks=60" +
                        " --cycles=2 --epochs=1 --metrics-out=" +
                        metrics_path + " --trace-out=" + trace_path +
                        " > /dev/null 2>&1";
  int rc = std::system(command.c_str());
  ASSERT_EQ(rc, 0) << "CLI failed: " << command;

  // The run must produce a real graph, the metrics JSON, and the trace.
  auto generated = LoadEdgeList(out_path);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  EXPECT_GT(generated->num_edges(), 0u);

  std::string json = ReadFileOrDie(metrics_path);
  ASSERT_FALSE(json.empty());

  // Every key in the golden schema must be present in the JSON.
  std::string schema = ReadFileOrDie(FAIRGEN_METRICS_SCHEMA_PATH);
  size_t keys_checked = 0;
  for (const std::string& raw_line : StrSplit(schema, '\n')) {
    std::string_view line = StrTrim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    std::string quoted = "\"" + std::string(line) + "\"";
    EXPECT_NE(json.find(quoted), std::string::npos)
        << "metrics JSON is missing schema key " << line;
    ++keys_checked;
  }
  EXPECT_GE(keys_checked, 15u) << "schema file looks truncated";

  // Acceptance spot-checks: the training curves carry actual points (a
  // key with an empty series would pass the contains() check above).
  EXPECT_EQ(json.find("\"trainer.nll\": []"), std::string::npos)
      << "per-epoch NLL series is empty";
  EXPECT_EQ(json.find("\"trainer.self_paced_lambda\": []"),
            std::string::npos);
  EXPECT_EQ(json.find("\"trainer.parity_regularizer\": []"),
            std::string::npos);

  // --trace-out enables span collection; the run must record spans.
  std::string trace = ReadFileOrDie(trace_path);
  EXPECT_NE(trace.find("\"trainer.fit\""), std::string::npos);
  EXPECT_NE(trace.find("\"trainer.generate\""), std::string::npos);
}

TEST_F(CliMetricsTest, StatsCommandWritesMetricsToo) {
  Rng rng(23);
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 40;
  cfg.num_edges = 160;
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  std::string edges_path = TempPath("stats_edges.txt");
  ASSERT_TRUE(SaveEdgeList(data->graph, edges_path).ok());
  std::string metrics_path = TempPath("stats_metrics.json");

  std::string command = std::string(FAIRGEN_CLI_PATH) + " stats " +
                        edges_path + " --metrics-out=" + metrics_path +
                        " > /dev/null 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0);
  std::string json = ReadFileOrDie(metrics_path);
  // stats runs the MMD-free metric path; the registry document must still
  // be well-formed and carry the four sections.
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
}

}  // namespace
}  // namespace fairgen
