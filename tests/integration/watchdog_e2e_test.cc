// End-to-end fault-injection test of the run-health watchdog: drives the
// real `fairgen` CLI with `--watchdog` and injected faults, then checks
// the whole observability chain — the structured event journal on disk
// (via the real `validate_telemetry` binary and the golden events
// schema), the `fairgen_alerts_total` Prometheus family, the emergency
// checkpoint written on a fatal rule, and the `fairgen_doctor` triage
// verdicts (healthy / degraded / failed). The observation-only contract
// is pinned too: watchdog + fairness probes must leave the generated
// graph bit-identical to an uninstrumented run, at 1, 2, and 4 threads.
//
// Binary and schema paths are injected by tests/CMakeLists.txt as
// compile definitions (FAIRGEN_CLI_PATH, FAIRGEN_DOCTOR_PATH,
// FAIRGEN_VALIDATE_PATH, FAIRGEN_EVENTS_SCHEMA_PATH).

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "core/checkpoint.h"
#include "data/synthetic.h"
#include "graph/edgelist.h"

namespace fairgen {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// The run directories under a telemetry parent dir, sorted.
std::vector<std::string> RunDirs(const std::string& parent) {
  std::vector<std::string> out;
  DIR* dir = ::opendir(parent.c_str());
  if (dir == nullptr) return out;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    std::string path = parent + "/" + name;
    if (FileExists(path + "/run.json")) out.push_back(path);
  }
  ::closedir(dir);
  std::sort(out.begin(), out.end());
  return out;
}

// All alert records in an events.jsonl, as (name, severity) pairs.
std::vector<std::pair<std::string, std::string>> AlertRecords(
    const std::string& events_path) {
  std::vector<std::pair<std::string, std::string>> out;
  std::ifstream in(events_path);
  std::string line;
  while (std::getline(in, line)) {
    auto doc = json::Parse(line);
    if (!doc.ok() || doc->GetString("type") != "alert") continue;
    out.emplace_back(doc->GetString("name"), doc->GetString("severity"));
  }
  return out;
}

class WatchdogE2eTest : public testing::Test {
 protected:
  std::string TempPath(const std::string& suffix) {
    return testing::TempDir() + "/fairgen_wd_e2e_" +
           std::to_string(::getpid()) + "_" + suffix;
  }

  // Seeded demo inputs (edges, few-shot labels, protected set).
  void WriteInputs(const std::string& edges, const std::string& labels,
                   const std::string& protected_path, uint32_t nodes,
                   uint32_t edge_count) {
    Rng rng(19);
    SyntheticGraphConfig cfg;
    cfg.num_nodes = nodes;
    cfg.num_edges = edge_count;
    cfg.num_classes = 2;
    cfg.protected_size = nodes / 5;
    auto data = GenerateSynthetic(cfg, rng);
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    ASSERT_TRUE(SaveEdgeList(data->graph, edges).ok());
    {
      std::ofstream out(labels);
      std::vector<int32_t> few_shot = FewShotLabels(*data, 5, rng);
      for (NodeId v = 0; v < data->graph.num_nodes(); ++v) {
        if (few_shot[v] != kUnlabeled) out << v << ' ' << few_shot[v] << '\n';
      }
    }
    {
      std::ofstream out(protected_path);
      for (NodeId v : data->protected_set) out << v << '\n';
    }
  }

  // Runs the CLI to completion through the shell (so an env prefix
  // works); returns the exit status, or -1 on death by signal.
  int RunCli(const std::string& env_prefix, const std::string& args) {
    std::string command = env_prefix + std::string(FAIRGEN_CLI_PATH) + " " +
                          args + " > /dev/null 2>&1";
    int rc = std::system(command.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  }

  // fairgen_doctor's exit code for a run dir: 0 healthy, 1 degraded,
  // 2 failed. Captures --json output into `json_out` when non-null.
  int RunDoctor(const std::string& run_dir, std::string* json_out) {
    std::string json_path = TempPath("doctor.json");
    std::string command = std::string(FAIRGEN_DOCTOR_PATH) + " " + run_dir;
    if (json_out != nullptr) {
      command += " --json > " + json_path + " 2>/dev/null";
    } else {
      command += " > /dev/null 2>&1";
    }
    int rc = std::system(command.c_str());
    if (json_out != nullptr) *json_out = ReadFileOrDie(json_path);
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  }

  int ValidateEvents(const std::string& events_path) {
    std::string command = std::string(FAIRGEN_VALIDATE_PATH) +
                          " --kind=events --file=" + events_path +
                          " --schema=" FAIRGEN_EVENTS_SCHEMA_PATH
                          " > /dev/null 2>&1";
    int rc = std::system(command.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  }

  // Common CLI argument tail for a small training run.
  std::string BaseArgs(const std::string& edges, const std::string& labels,
                       const std::string& protected_path,
                       const std::string& out, unsigned threads) {
    return "generate " + edges + " --model=fairgen --labels=" + labels +
           " --protected=" + protected_path + " --out=" + out +
           " --seed=7 --walks=60 --cycles=3 --epochs=1 --threads=" +
           std::to_string(threads);
  }
};

// Fault A: a poisoned loss batch. The run must finish cleanly (the guard
// only records, never alters training), the journal must carry a warn
// alert for loss_non_finite, the Prometheus exposition must count it,
// and the doctor must say "degraded" — while the generated graph stays
// bit-identical to an uninjected, uninstrumented run.
TEST_F(WatchdogE2eTest, NanInjectionDegradesRunButNotOutput) {
  std::string edges = TempPath("edges.txt");
  std::string labels = TempPath("labels.txt");
  std::string protected_path = TempPath("protected.txt");
  WriteInputs(edges, labels, protected_path, 60, 280);

  // Reference: no watchdog, no probes, no injection.
  std::string clean_out = TempPath("clean.txt");
  ASSERT_EQ(
      RunCli("", BaseArgs(edges, labels, protected_path, clean_out, 2)), 0);

  // Injected: NaN into the recorded loss of training cycle 1, with the
  // full observability stack on.
  std::string inj_out = TempPath("injected.txt");
  std::string telemetry_dir = TempPath("nan_runs");
  ASSERT_EQ(RunCli("FAIRGEN_INJECT_NAN_LOSS=1 ",
                   BaseArgs(edges, labels, protected_path, inj_out, 2) +
                       " --watchdog --probe-every=1 --telemetry-dir=" +
                       telemetry_dir + " --telemetry-interval-ms=25"),
            0);

  // Observation-only: the poisoned scalar feeds the journal, not the
  // gradients, so the generated graph is unchanged.
  EXPECT_EQ(ReadFileOrDie(clean_out), ReadFileOrDie(inj_out));

  std::vector<std::string> runs = RunDirs(telemetry_dir);
  ASSERT_EQ(runs.size(), 1u);
  const std::string& run = runs[0];

  // The journal validates against the golden schema and carries the
  // warn-severity loss_non_finite alert.
  ASSERT_TRUE(FileExists(run + "/events.jsonl"));
  EXPECT_EQ(ValidateEvents(run + "/events.jsonl"), 0);
  auto alerts = AlertRecords(run + "/events.jsonl");
  ASSERT_FALSE(alerts.empty());
  bool found = false;
  for (const auto& [name, severity] : alerts) {
    if (name == "loss_non_finite") {
      found = true;
      EXPECT_EQ(severity, "warn");
    }
    EXPECT_NE(severity, "fatal");
  }
  EXPECT_TRUE(found) << "no loss_non_finite alert in " << run;

  // The alert reached the labeled Prometheus family.
  EXPECT_NE(ReadFileOrDie(run + "/metrics.prom")
                .find("fairgen_alerts_total{rule=\"loss_non_finite\"}"),
            std::string::npos);

  // Warn alerts without a fatal: the doctor calls it degraded (exit 1)
  // and names the firing rule with its epoch window.
  std::string doctor_json;
  EXPECT_EQ(RunDoctor(run, &doctor_json), 1);
  auto verdict = json::Parse(doctor_json);
  ASSERT_TRUE(verdict.ok()) << doctor_json;
  EXPECT_EQ(verdict->GetString("verdict"), "degraded");
  EXPECT_NE(doctor_json.find("loss_non_finite"), std::string::npos);
}

// Fault B: an impossible RSS budget. The fatal rule must write an
// emergency checkpoint via the SIGTERM crash path, leave a finalized
// manifest recording 128+15 plus a crash event after the fatal alert,
// and the doctor must say "failed".
TEST_F(WatchdogE2eTest, RssBreachWritesEmergencyCheckpointAndFailsRun) {
  std::string edges = TempPath("rss_edges.txt");
  std::string labels = TempPath("rss_labels.txt");
  std::string protected_path = TempPath("rss_protected.txt");
  // Big enough that training outlives several publisher ticks.
  WriteInputs(edges, labels, protected_path, 140, 700);
  std::string telemetry_dir = TempPath("rss_runs");
  std::string ckpt_dir = TempPath("rss_ckpt");

  std::vector<std::string> args = {
      std::string(FAIRGEN_CLI_PATH),
      "generate",
      edges,
      "--model=fairgen",
      "--labels=" + labels,
      "--protected=" + protected_path,
      "--out=" + TempPath("rss_generated.txt"),
      "--seed=7",
      "--walks=1500",
      "--cycles=6",
      "--epochs=2",
      "--checkpoint-dir=" + ckpt_dir,
      "--watchdog",
      "--rss-budget-mb=1",  // any real process exceeds 1 MiB
      "--telemetry-dir=" + telemetry_dir,
      "--telemetry-interval-ms=20",
  };

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    std::freopen("/dev/null", "w", stdout);
    std::freopen("/dev/null", "w", stderr);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  int wait_status = 0;
  ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);

  // The fatal action raises SIGTERM; the crash-flush handler re-raises
  // with the default disposition, so the child dies by the signal.
  ASSERT_TRUE(WIFSIGNALED(wait_status)) << wait_status;
  EXPECT_EQ(WTERMSIG(wait_status), SIGTERM);

  std::vector<std::string> runs = RunDirs(telemetry_dir);
  ASSERT_EQ(runs.size(), 1u);
  const std::string& run = runs[0];

  // The journal survived the crash: schema-valid, with the fatal alert
  // and a crash record carrying the conventional 128+15.
  ASSERT_TRUE(FileExists(run + "/events.jsonl"));
  EXPECT_EQ(ValidateEvents(run + "/events.jsonl"), 0);
  auto alerts = AlertRecords(run + "/events.jsonl");
  bool fatal_found = false;
  for (const auto& [name, severity] : alerts) {
    if (name == "rss_budget" && severity == "fatal") fatal_found = true;
  }
  EXPECT_TRUE(fatal_found) << "no fatal rss_budget alert in " << run;
  {
    std::ifstream in(run + "/events.jsonl");
    std::string line;
    bool crash_found = false;
    while (std::getline(in, line)) {
      auto doc = json::Parse(line);
      if (doc.ok() && doc->GetString("type") == "crash") {
        crash_found = true;
        EXPECT_EQ(doc->Find("fields")->GetDouble("exit_status", -1),
                  128.0 + SIGTERM);
      }
    }
    EXPECT_TRUE(crash_found);
  }

  // The manifest finalized with the crash status.
  auto manifest = json::ParseFile(run + "/run.json");
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_TRUE(manifest->Find("finalized")->AsBool());
  EXPECT_EQ(manifest->GetDouble("exit_status", -1), 128.0 + SIGTERM);

  // The emergency checkpoint is a complete, parseable FGCKPT2 container.
  std::vector<CheckpointFile> ckpts = ListCheckpoints(ckpt_dir);
  ASSERT_FALSE(ckpts.empty()) << "no emergency checkpoint in " << ckpt_dir;
  auto reader = CheckpointReader::ReadFile(ckpts.back().path);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();

  // A fatal alert means the run failed outright (exit 2).
  std::string doctor_json;
  EXPECT_EQ(RunDoctor(run, &doctor_json), 2);
  auto verdict = json::Parse(doctor_json);
  ASSERT_TRUE(verdict.ok()) << doctor_json;
  EXPECT_EQ(verdict->GetString("verdict"), "failed");
  EXPECT_NE(doctor_json.find("rss_budget"), std::string::npos);
}

// The observation-only contract under concurrency: watchdog + per-cycle
// fairness probes leave the generated graph bit-identical across 1, 2,
// and 4 threads, and identical to the single-thread uninstrumented run.
TEST_F(WatchdogE2eTest, WatchdogAndProbesAreBitExactAcrossThreadCounts) {
  std::string edges = TempPath("det_edges.txt");
  std::string labels = TempPath("det_labels.txt");
  std::string protected_path = TempPath("det_protected.txt");
  WriteInputs(edges, labels, protected_path, 60, 280);

  std::string plain_out = TempPath("det_plain.txt");
  ASSERT_EQ(
      RunCli("", BaseArgs(edges, labels, protected_path, plain_out, 1)), 0);
  const std::string plain = ReadFileOrDie(plain_out);
  ASSERT_FALSE(plain.empty());

  for (unsigned threads : {1u, 2u, 4u}) {
    std::string out = TempPath("det_t" + std::to_string(threads) + ".txt");
    std::string telemetry_dir =
        TempPath("det_runs_t" + std::to_string(threads));
    ASSERT_EQ(RunCli("", BaseArgs(edges, labels, protected_path, out,
                                  threads) +
                             " --watchdog --probe-every=1 --telemetry-dir=" +
                             telemetry_dir + " --telemetry-interval-ms=25"),
              0);
    EXPECT_EQ(plain, ReadFileOrDie(out)) << "threads=" << threads;

    // Each instrumented run journaled its fairness probes.
    std::vector<std::string> runs = RunDirs(telemetry_dir);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(ValidateEvents(runs[0] + "/events.jsonl"), 0);
    EXPECT_NE(ReadFileOrDie(runs[0] + "/events.jsonl").find("\"fairness\""),
              std::string::npos);
    // Tiny synthetic runs can legitimately trip warn rules (the fairness
    // gap of a 60-node graph is noisy), so the doctor may say healthy or
    // degraded here — but never failed: nothing fatal fired.
    for (const auto& [name, severity] : AlertRecords(runs[0] +
                                                     "/events.jsonl")) {
      EXPECT_NE(severity, "fatal") << name;
    }
    EXPECT_LE(RunDoctor(runs[0], nullptr), 1) << "run misclassified";
  }
}

// The doctor's verdict ladder, pinned on hand-authored run directories
// where every input is controlled: a finalized clean run with no alerts
// is healthy (exit 0), warn alerts degrade it (exit 1), and a fatal
// alert — or a manifest that never finalized — fails it (exit 2).
TEST_F(WatchdogE2eTest, DoctorVerdictLadderOnAuthoredRuns) {
  auto write_run = [&](const std::string& dir, const std::string& events,
                       bool finalized, int exit_status) {
    ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0) << dir;
    std::ofstream manifest(dir + "/run.json");
    manifest << "{\"schema_version\": 1, \"run_id\": \"r1\", "
             << "\"exit_status\": " << exit_status << ", \"finalized\": "
             << (finalized ? "true" : "false") << "}\n";
    std::ofstream journal(dir + "/events.jsonl");
    journal << events;
  };
  const std::string base =
      "{\"seq\": 1, \"unix_ms\": 1, \"type\": \"config\", "
      "\"name\": \"run_start\", \"fields\": {}}\n"
      "{\"seq\": 2, \"unix_ms\": 2, \"type\": \"stage\", "
      "\"name\": \"fit\", \"fields\": {}}\n";
  const std::string warn_alert =
      "{\"seq\": 3, \"unix_ms\": 3, \"type\": \"alert\", "
      "\"name\": \"loss_plateau\", \"severity\": \"warn\", \"epoch\": 4, "
      "\"message\": \"m\", \"fields\": {}}\n";
  const std::string fatal_alert =
      "{\"seq\": 4, \"unix_ms\": 4, \"type\": \"alert\", "
      "\"name\": \"rss_budget\", \"severity\": \"fatal\", \"epoch\": 5, "
      "\"message\": \"m\", \"fields\": {}}\n";

  std::string healthy = TempPath("doc_healthy");
  write_run(healthy, base, true, 0);
  std::string json;
  EXPECT_EQ(RunDoctor(healthy, &json), 0);
  EXPECT_NE(json.find("\"healthy\""), std::string::npos) << json;

  std::string degraded = TempPath("doc_degraded");
  write_run(degraded, base + warn_alert, true, 0);
  EXPECT_EQ(RunDoctor(degraded, &json), 1);
  EXPECT_NE(json.find("\"degraded\""), std::string::npos) << json;
  EXPECT_NE(json.find("loss_plateau"), std::string::npos) << json;

  std::string failed = TempPath("doc_failed");
  write_run(failed, base + warn_alert + fatal_alert, true, 143);
  EXPECT_EQ(RunDoctor(failed, &json), 2);
  EXPECT_NE(json.find("\"failed\""), std::string::npos) << json;

  // A run that never finalized its manifest is failed even with a quiet
  // journal — the process died without reaching any flush path.
  std::string torn = TempPath("doc_torn");
  write_run(torn, base, false, -1);
  EXPECT_EQ(RunDoctor(torn, &json), 2);
  EXPECT_NE(json.find("\"failed\""), std::string::npos) << json;
}

}  // namespace
}  // namespace fairgen
