// Regression tests for strict CLI input parsing: every numeric flag and
// every line of the label/node-set input files must parse fully or fail
// loudly. These pin real bugs — the old null-endptr strtol/strtoul calls
// turned `--telemetry-port=abc` into port 0, wrapped negative values for
// unsigned flags into huge numbers, and silently rewrote node 0's label
// when a label file carried a non-numeric node id.
//
// The CLI binary path is injected by tests/CMakeLists.txt as the
// FAIRGEN_CLI_PATH compile definition.

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "graph/edgelist.h"

namespace fairgen {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class CliFlagsTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(31);
    SyntheticGraphConfig cfg;
    cfg.num_nodes = 30;
    cfg.num_edges = 90;
    auto data = GenerateSynthetic(cfg, rng);
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    edges_path_ = TempPath("edges.txt");
    ASSERT_TRUE(SaveEdgeList(data->graph, edges_path_).ok());
    out_path_ = TempPath("out.txt");
  }

  std::string TempPath(const std::string& suffix) {
    std::string path = testing::TempDir() + "/fairgen_cli_flags_" + suffix;
    paths_.push_back(path);
    return path;
  }

  // Runs the CLI with `args` appended after "generate <edges> --out=<out>";
  // returns the exit code and captures stderr into *stderr_out.
  int RunCli(const std::string& args, std::string* stderr_out) {
    std::string err_path = TempPath("stderr.txt");
    std::string command = std::string(FAIRGEN_CLI_PATH) + " generate " +
                          edges_path_ + " --out=" + out_path_ + " " + args +
                          " > /dev/null 2> " + err_path;
    int raw = std::system(command.c_str());
    if (stderr_out != nullptr) *stderr_out = ReadFileOrDie(err_path);
    return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  }

  void TearDown() override {
    for (const std::string& p : paths_) std::remove(p.c_str());
  }

  std::string edges_path_;
  std::string out_path_;
  std::vector<std::string> paths_;
};

TEST_F(CliFlagsTest, NonNumericTelemetryPortIsAFlagError) {
  std::string err;
  EXPECT_EQ(RunCli("--telemetry-port=abc", &err), 2);
  EXPECT_NE(err.find("bad --telemetry-port"), std::string::npos) << err;
  EXPECT_NE(err.find("'abc'"), std::string::npos) << err;
}

TEST_F(CliFlagsTest, TrailingJunkIsAFlagError) {
  std::string err;
  EXPECT_EQ(RunCli("--walks=12x", &err), 2);
  EXPECT_NE(err.find("bad --walks"), std::string::npos) << err;
}

TEST_F(CliFlagsTest, NegativeValueForUnsignedFlagIsAFlagError) {
  // The old strtoul path wrapped -3 to 4294967293 and trained with it.
  std::string err;
  EXPECT_EQ(RunCli("--cycles=-3", &err), 2);
  EXPECT_NE(err.find("negative"), std::string::npos) << err;
}

TEST_F(CliFlagsTest, OverflowIsAFlagError) {
  std::string err;
  EXPECT_EQ(RunCli("--seed=99999999999999999999999", &err), 2);
  EXPECT_NE(err.find("out of range"), std::string::npos) << err;
  // A value that parses but exceeds the flag's width is equally an error.
  EXPECT_EQ(RunCli("--telemetry-port=70000", &err), 2);
  EXPECT_NE(err.find("bad --telemetry-port"), std::string::npos) << err;
}

TEST_F(CliFlagsTest, EveryNumericFlagRejectsGarbage) {
  const char* flags[] = {
      "--seed",        "--walks",
      "--cycles",      "--epochs",
      "--threads",     "--checkpoint-every",
      "--checkpoint-retain", "--telemetry-port",
      "--telemetry-interval-ms", "--profile-hz",
      "--rss-budget-mb", "--probe-every"};
  for (const char* flag : flags) {
    std::string err;
    EXPECT_EQ(RunCli(std::string(flag) + "=abc", &err), 2) << flag;
    EXPECT_NE(err.find("bad " + std::string(flag)), std::string::npos)
        << flag << ": " << err;
  }
}

TEST_F(CliFlagsTest, EmptyNumericFlagValueIsAFlagError) {
  std::string err;
  EXPECT_EQ(RunCli("--walks=", &err), 2);
  EXPECT_NE(err.find("bad --walks"), std::string::npos) << err;
}

TEST_F(CliFlagsTest, MalformedLabelNodeIdFailsWithLineNumber) {
  // The old parser read "abc" as node 0 and silently overwrote node 0's
  // label; now the exact file:line is reported and the run fails.
  std::string labels_path = TempPath("labels.txt");
  {
    std::ofstream out(labels_path);
    out << "0 1\n" << "abc 0\n";
  }
  std::string err;
  EXPECT_NE(RunCli("--labels=" + labels_path + " --cycles=1 --epochs=1",
                   &err),
            0);
  EXPECT_NE(err.find(labels_path + ":2"), std::string::npos) << err;
  EXPECT_NE(err.find("'abc'"), std::string::npos) << err;
}

TEST_F(CliFlagsTest, LabelAboveInt32MaxFails) {
  // 3000000000 fits in the old int64 parse and passed the `label < 0`
  // check, then truncated negative in the int32_t cast.
  std::string labels_path = TempPath("labels_big.txt");
  {
    std::ofstream out(labels_path);
    out << "0 3000000000\n";
  }
  std::string err;
  EXPECT_NE(RunCli("--labels=" + labels_path + " --cycles=1 --epochs=1",
                   &err),
            0);
  EXPECT_NE(err.find(labels_path + ":1"), std::string::npos) << err;
}

TEST_F(CliFlagsTest, LabelNodeIdOutOfRangeFails) {
  std::string labels_path = TempPath("labels_oob.txt");
  {
    std::ofstream out(labels_path);
    out << "99999 1\n";
  }
  std::string err;
  EXPECT_NE(RunCli("--labels=" + labels_path + " --cycles=1 --epochs=1",
                   &err),
            0);
  EXPECT_NE(err.find("out of range"), std::string::npos) << err;
}

TEST_F(CliFlagsTest, MalformedNodeSetFailsWithLineNumber) {
  std::string prot_path = TempPath("protected.txt");
  {
    std::ofstream out(prot_path);
    out << "1\n" << "# comment lines are fine\n" << "2junk\n";
  }
  std::string err;
  EXPECT_NE(RunCli("--protected=" + prot_path + " --cycles=1 --epochs=1",
                   &err),
            0);
  EXPECT_NE(err.find(prot_path + ":3"), std::string::npos) << err;
}

TEST_F(CliFlagsTest, WellFormedInputsStillRun) {
  std::string labels_path = TempPath("labels_ok.txt");
  {
    std::ofstream out(labels_path);
    out << "# node label\n" << "0 1\n" << "1 0\n" << "2 1\n";
  }
  std::string err;
  EXPECT_EQ(RunCli("--labels=" + labels_path +
                       " --cycles=1 --epochs=1 --walks=20 --threads=2",
                   &err),
            0)
      << err;
}

}  // namespace
}  // namespace fairgen
