// End-to-end fault-tolerance test of the checkpoint/resume pipeline:
// kills a real `fairgen` CLI training run mid-flight with SIGTERM (the
// signal handler persists the latest completed-cycle checkpoint), reruns
// it with --resume, and asserts the final saved model and the generated
// edge list are byte-identical to an uninterrupted run at the same seed —
// at 1, 2, and 4 threads (results are bit-identical across thread
// counts by the determinism contract).
//
// The CLI path is injected by tests/CMakeLists.txt as FAIRGEN_CLI_PATH.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fileio.h"
#include "core/checkpoint.h"
#include "data/synthetic.h"
#include "graph/edgelist.h"

namespace fairgen {
namespace {

class ResumeE2eTest : public testing::Test {
 protected:
  std::string TempPath(const std::string& suffix) {
    return testing::TempDir() + "/fairgen_resume_e2e_" +
           std::to_string(::getpid()) + "_" + suffix;
  }

  // Seeded demo inputs (edges, few-shot labels, protected set).
  void WriteInputs(const std::string& edges, const std::string& labels,
                   const std::string& protected_path) {
    Rng rng(19);
    SyntheticGraphConfig cfg;
    cfg.num_nodes = 140;
    cfg.num_edges = 700;
    cfg.num_classes = 2;
    cfg.protected_size = 28;
    auto data = GenerateSynthetic(cfg, rng);
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    ASSERT_TRUE(SaveEdgeList(data->graph, edges).ok());
    {
      std::ofstream out(labels);
      std::vector<int32_t> few_shot = FewShotLabels(*data, 5, rng);
      for (NodeId v = 0; v < data->graph.num_nodes(); ++v) {
        if (few_shot[v] != kUnlabeled) out << v << ' ' << few_shot[v] << '\n';
      }
    }
    {
      std::ofstream out(protected_path);
      for (NodeId v : data->protected_set) out << v << '\n';
    }
  }

  // Shared CLI arguments for one scenario: big enough budgets that the
  // kill below lands with training cycles still to run on most machines.
  std::vector<std::string> BaseArgs(const std::string& edges,
                                    const std::string& labels,
                                    const std::string& protected_path,
                                    const std::string& out,
                                    const std::string& model,
                                    const std::string& ckpt_dir,
                                    unsigned threads) {
    return {
        std::string(FAIRGEN_CLI_PATH),
        "generate",
        edges,
        "--model=fairgen",
        "--labels=" + labels,
        "--protected=" + protected_path,
        "--out=" + out,
        "--save-model=" + model,
        "--checkpoint-dir=" + ckpt_dir,
        "--seed=7",
        "--walks=1500",
        "--cycles=5",
        "--epochs=2",
        "--threads=" + std::to_string(threads),
    };
  }

  int RunToCompletion(const std::vector<std::string>& args) {
    std::string command;
    for (const std::string& a : args) command += a + " ";
    command += "> /dev/null 2>&1";
    int rc = std::system(command.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  }

  // Forks the CLI, waits for the first checkpoint file to appear under
  // `ckpt_dir`, then SIGTERMs it. Returns the child's wait status.
  int RunAndKill(const std::vector<std::string>& args,
                 const std::string& ckpt_dir) {
    std::vector<std::string> argv_strings = args;
    pid_t pid = ::fork();
    EXPECT_GE(pid, 0);
    if (pid == 0) {
      std::freopen("/dev/null", "w", stdout);
      std::freopen("/dev/null", "w", stderr);
      std::vector<char*> argv;
      argv.reserve(argv_strings.size() + 1);
      for (std::string& a : argv_strings) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
    // Kill as soon as the first cycle checkpoint lands, so cycles remain
    // to be replayed. If the child finishes first the wait status shows
    // a clean exit and the caller skips the resume leg.
    int wait_status = 0;
    bool reaped = false;
    for (int i = 0; i < 3000; ++i) {
      if (!ListCheckpoints(ckpt_dir).empty()) break;
      if (::waitpid(pid, &wait_status, WNOHANG) == pid) {
        reaped = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (!reaped) {
      ::kill(pid, SIGTERM);
      EXPECT_EQ(::waitpid(pid, &wait_status, 0), pid);
    }
    return wait_status;
  }

  std::string ReadFileOrDie(const std::string& path) {
    auto bytes = ReadFileToString(path);
    EXPECT_TRUE(bytes.ok()) << path << ": " << bytes.status().ToString();
    return bytes.ok() ? bytes.MoveValueUnsafe() : std::string();
  }

  // The scenario: uninterrupted run vs. killed-then-resumed run must
  // produce byte-identical saved models and generated graphs.
  void CheckResumeEquivalence(unsigned threads) {
    std::string tag = "t" + std::to_string(threads) + "_";
    std::string edges = TempPath(tag + "edges.txt");
    std::string labels = TempPath(tag + "labels.txt");
    std::string protected_path = TempPath(tag + "protected.txt");
    WriteInputs(edges, labels, protected_path);

    // Uninterrupted reference.
    std::string ref_out = TempPath(tag + "ref_out.txt");
    std::string ref_model = TempPath(tag + "ref_model.fgckpt");
    std::string ref_dir = TempPath(tag + "ref_ckpt");
    ASSERT_EQ(RunToCompletion(BaseArgs(edges, labels, protected_path,
                                       ref_out, ref_model, ref_dir,
                                       threads)),
              0);

    // Killed run, then resume.
    std::string out = TempPath(tag + "out.txt");
    std::string model = TempPath(tag + "model.fgckpt");
    std::string dir = TempPath(tag + "ckpt");
    std::vector<std::string> args = BaseArgs(
        edges, labels, protected_path, out, model, dir, threads);
    int wait_status = RunAndKill(args, dir);

    if (WIFSIGNALED(wait_status)) {
      EXPECT_EQ(WTERMSIG(wait_status), SIGTERM);
      // The signal path persisted a checkpoint the resume can use
      // whenever at least one training cycle had completed.
      std::vector<std::string> resume_args = args;
      resume_args.push_back("--resume");
      ASSERT_EQ(RunToCompletion(resume_args), 0);
    } else {
      // Machine fast enough to finish before the kill: the run is
      // already complete — equivalence still must hold below.
      EXPECT_TRUE(WIFEXITED(wait_status));
      EXPECT_EQ(WEXITSTATUS(wait_status), 0);
    }

    EXPECT_EQ(ReadFileOrDie(model), ReadFileOrDie(ref_model))
        << "resumed model diverged from the uninterrupted run";
    EXPECT_EQ(ReadFileOrDie(out), ReadFileOrDie(ref_out))
        << "resumed generation diverged from the uninterrupted run";
  }
};

TEST_F(ResumeE2eTest, KilledRunResumesBitIdenticalOneThread) {
  CheckResumeEquivalence(1);
}

TEST_F(ResumeE2eTest, KilledRunResumesBitIdenticalTwoThreads) {
  CheckResumeEquivalence(2);
}

TEST_F(ResumeE2eTest, KilledRunResumesBitIdenticalFourThreads) {
  CheckResumeEquivalence(4);
}

}  // namespace
}  // namespace fairgen
