// Cross-cutting property tests: invariants that must hold for EVERY
// generator in the zoo, across random datasets and seeds.

#include <gtest/gtest.h>

#include "eval/model_zoo.h"
#include "graph/components.h"
#include "stats/metrics.h"

namespace fairgen {
namespace {

ZooConfig TinyZoo() {
  ZooConfig cfg;
  cfg.labels_per_class = 3;
  cfg.walk_budget.num_walks = 40;
  cfg.walk_budget.epochs = 1;
  cfg.walk_budget.gen_transition_multiplier = 2.0;
  cfg.fairgen.num_walks = 40;
  cfg.fairgen.self_paced_cycles = 2;
  cfg.fairgen.generator_epochs = 1;
  cfg.fairgen.embedding_dim = 16;
  cfg.fairgen.ffn_dim = 24;
  cfg.fairgen.gen_transition_multiplier = 2.0;
  cfg.gae.epochs = 10;
  return cfg;
}

LabeledGraph RandomData(uint64_t seed) {
  SyntheticGraphConfig cfg;
  Rng seed_rng(seed);
  cfg.num_nodes = 60 + seed_rng.UniformU32(60);
  cfg.num_edges = cfg.num_nodes * (3 + seed_rng.UniformU32(4));
  cfg.num_classes = 2 + seed_rng.UniformU32(3);
  cfg.protected_size = 8 + seed_rng.UniformU32(8);
  auto data = GenerateSynthetic(cfg, seed_rng);
  EXPECT_TRUE(data.ok());
  return data.MoveValueUnsafe();
}

class ZooInvariantsTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ZooInvariantsTest, EveryModelProducesAValidSameSizeGraph) {
  uint64_t seed = GetParam();
  LabeledGraph data = RandomData(seed);
  auto zoo = MakeModelZoo(data, TinyZoo(), seed);
  ASSERT_TRUE(zoo.ok());
  for (auto& model : *zoo) {
    SCOPED_TRACE(model->name());
    Rng rng(seed);
    ASSERT_TRUE(model->Fit(data.graph, rng).ok());
    auto generated = model->Generate(rng);
    ASSERT_TRUE(generated.ok()) << generated.status().ToString();

    // Same vertex set.
    EXPECT_EQ(generated->num_nodes(), data.graph.num_nodes());
    // Edge budget respected (within 10% slack for BA's stochastic growth).
    EXPECT_LE(generated->num_edges(), data.graph.num_edges() * 11 / 10);
    EXPECT_GE(generated->num_edges(), data.graph.num_edges() / 2);
    // No self loops, no duplicates, canonical orientation — and all
    // metrics finite.
    for (const Edge& e : generated->ToEdgeList()) {
      EXPECT_LT(e.u, e.v);
      EXPECT_LT(e.v, generated->num_nodes());
    }
    GraphMetrics m = ComputeMetrics(*generated);
    for (double v : m.ToArray()) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZooInvariantsTest,
                         testing::Values(101, 202, 303));

class DeterminismTest : public testing::TestWithParam<uint64_t> {};

TEST_P(DeterminismTest, FairGenPipelineIsSeedDeterministic) {
  uint64_t seed = GetParam();
  LabeledGraph data = RandomData(seed);
  auto run = [&]() {
    auto trainer = MakeFairGen(data, TinyZoo(), FairGenVariant::kFull,
                               seed);
    EXPECT_TRUE(trainer.ok());
    Rng rng(seed);
    EXPECT_TRUE((*trainer)->Fit(data.graph, rng).ok());
    auto generated = (*trainer)->Generate(rng);
    EXPECT_TRUE(generated.ok());
    return generated->ToEdgeList();
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest, testing::Values(7, 77));

TEST(ZooInvariantsTest, GeneratedGraphsDifferAcrossSeeds) {
  LabeledGraph data = RandomData(404);
  auto run = [&](uint64_t seed) {
    auto trainer =
        MakeFairGen(data, TinyZoo(), FairGenVariant::kFull, seed);
    EXPECT_TRUE(trainer.ok());
    Rng rng(seed);
    EXPECT_TRUE((*trainer)->Fit(data.graph, rng).ok());
    auto generated = (*trainer)->Generate(rng);
    EXPECT_TRUE(generated.ok());
    return generated->ToEdgeList();
  };
  EXPECT_NE(run(1), run(2));
}

TEST(ZooInvariantsTest, FairGenAssemblyReportConsistent) {
  LabeledGraph data = RandomData(505);
  auto trainer = MakeFairGen(data, TinyZoo(), FairGenVariant::kFull, 505);
  ASSERT_TRUE(trainer.ok());
  Rng rng(505);
  ASSERT_TRUE((*trainer)->Fit(data.graph, rng).ok());
  auto generated = (*trainer)->Generate(rng);
  ASSERT_TRUE(generated.ok());
  const AssemblyReport& report = (*trainer)->last_assembly_report();
  EXPECT_EQ(report.assembled_edges, generated->num_edges());
  EXPECT_EQ(report.target_edges, data.graph.num_edges());
  EXPECT_EQ(report.protected_volume_achieved,
            generated->Volume(data.protected_set));
}

}  // namespace
}  // namespace fairgen
