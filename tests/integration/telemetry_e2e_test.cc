// End-to-end telemetry pipeline test: drives the real `fairgen` CLI with
// `--telemetry-dir`, then validates the run directory it leaves behind
// with the real `validate_telemetry` binary against the checked-in golden
// schemas, renders it with the real `fairgen_report` binary, and finally
// kills a child CLI mid-run with SIGTERM to prove the crash-flush path
// leaves a finalized manifest and a usable snapshot on disk.
//
// Binary and schema paths are injected by tests/CMakeLists.txt as compile
// definitions (FAIRGEN_CLI_PATH, FAIRGEN_REPORT_PATH,
// FAIRGEN_VALIDATE_PATH, FAIRGEN_*_SCHEMA_PATH).

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "data/synthetic.h"
#include "graph/edgelist.h"

namespace fairgen {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// The run directories under a telemetry parent dir, sorted.
std::vector<std::string> RunDirs(const std::string& parent) {
  std::vector<std::string> out;
  DIR* dir = ::opendir(parent.c_str());
  if (dir == nullptr) return out;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    std::string path = parent + "/" + name;
    if (FileExists(path + "/run.json")) out.push_back(path);
  }
  ::closedir(dir);
  std::sort(out.begin(), out.end());
  return out;
}

class TelemetryE2eTest : public testing::Test {
 protected:
  std::string TempPath(const std::string& suffix) {
    std::string path = testing::TempDir() + "/fairgen_tele_e2e_" +
                       std::to_string(::getpid()) + "_" + suffix;
    return path;
  }

  // Writes the seeded demo inputs (edges, few-shot labels, protected set)
  // the CLI runs on.
  void WriteInputs(const std::string& edges, const std::string& labels,
                   const std::string& protected_path, uint32_t nodes,
                   uint32_t edges_count) {
    Rng rng(19);
    SyntheticGraphConfig cfg;
    cfg.num_nodes = nodes;
    cfg.num_edges = edges_count;
    cfg.num_classes = 2;
    cfg.protected_size = nodes / 5;
    auto data = GenerateSynthetic(cfg, rng);
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    ASSERT_TRUE(SaveEdgeList(data->graph, edges).ok());
    {
      std::ofstream out(labels);
      std::vector<int32_t> few_shot = FewShotLabels(*data, 5, rng);
      for (NodeId v = 0; v < data->graph.num_nodes(); ++v) {
        if (few_shot[v] != kUnlabeled) out << v << ' ' << few_shot[v] << '\n';
      }
    }
    {
      std::ofstream out(protected_path);
      for (NodeId v : data->protected_set) out << v << '\n';
    }
  }

  int RunValidator(const std::string& kind, const std::string& file,
                   const std::string& schema) {
    std::string command = std::string(FAIRGEN_VALIDATE_PATH) +
                          " --kind=" + kind + " --file=" + file +
                          " --schema=" + schema + " > /dev/null 2>&1";
    int rc = std::system(command.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  }
};

TEST_F(TelemetryE2eTest, CliRunYieldsSchemaValidArtifactsAndReport) {
  std::string edges = TempPath("edges.txt");
  std::string labels = TempPath("labels.txt");
  std::string protected_path = TempPath("protected.txt");
  WriteInputs(edges, labels, protected_path, 60, 280);
  std::string out_path = TempPath("generated.txt");
  std::string telemetry_dir = TempPath("runs");

  std::string command = std::string(FAIRGEN_CLI_PATH) + " generate " +
                        edges + " --model=fairgen --labels=" + labels +
                        " --protected=" + protected_path + " --out=" +
                        out_path + " --seed=7 --walks=60 --cycles=2" +
                        " --epochs=1 --trace-out=" + TempPath("t.json") +
                        " --telemetry-dir=" + telemetry_dir +
                        " --telemetry-interval-ms=25 --profile-hz=997" +
                        " > /dev/null 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  std::vector<std::string> runs = RunDirs(telemetry_dir);
  ASSERT_EQ(runs.size(), 1u);
  const std::string& run = runs[0];

  // Every artifact validates against its golden schema...
  EXPECT_EQ(RunValidator("manifest", run + "/run.json",
                         FAIRGEN_MANIFEST_SCHEMA_PATH),
            0);
  EXPECT_EQ(RunValidator("snapshot", run + "/snapshot.json",
                         FAIRGEN_SNAPSHOT_SCHEMA_PATH),
            0);
  EXPECT_EQ(RunValidator("prometheus", run + "/metrics.prom",
                         FAIRGEN_PROM_SCHEMA_PATH),
            0);
  // The profiled run leaves a structurally valid collapsed-stack profile
  // in the run dir (training burns seconds of CPU at 997 Hz, so samples
  // are guaranteed).
  EXPECT_EQ(RunValidator("folded", run + "/profile.folded",
                         FAIRGEN_FOLDED_SCHEMA_PATH),
            0);

  // ...and the validator actually discriminates: a JSON document missing
  // the required keys must fail with exit 1 (not a usage error).
  std::string bogus = TempPath("bogus.json");
  {
    std::ofstream out(bogus);
    out << "{\"schema_version\": 1}\n";
  }
  EXPECT_EQ(RunValidator("manifest", bogus, FAIRGEN_MANIFEST_SCHEMA_PATH),
            1);

  // The finished manifest records a clean exit.
  auto manifest = json::ParseFile(run + "/run.json");
  ASSERT_TRUE(manifest.ok());
  EXPECT_TRUE(manifest->Find("finalized")->AsBool());
  EXPECT_EQ(manifest->GetDouble("exit_status", -1), 0.0);

  // fairgen_report renders the run dir into self-contained HTML.
  std::string report = TempPath("report.html");
  std::string report_command = std::string(FAIRGEN_REPORT_PATH) + " " +
                               telemetry_dir + " --out=" + report +
                               " --title=e2e > /dev/null 2>&1";
  ASSERT_EQ(std::system(report_command.c_str()), 0);
  std::string html = ReadFileOrDie(report);
  for (const char* id :
       {"id=\"runs\"", "id=\"curves\"", "id=\"stages\"", "id=\"memory\"",
        "id=\"profile\"", "id=\"bench\"", "id=\"compare\""}) {
    EXPECT_NE(html.find(id), std::string::npos) << "missing section " << id;
  }
  EXPECT_NE(html.find("<svg"), std::string::npos)
      << "no charts in the report";
  EXPECT_NE(html.find("trainer.nll"), std::string::npos);
  // Self-contained: no scripts, no external fetches.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
}

// A child CLI killed mid-run must leave a crash record: the signal-flush
// path finalizes run.json with exit status 128+SIGTERM and the periodic
// publisher guarantees a snapshot.json is already on disk.
TEST_F(TelemetryE2eTest, SigtermMidRunLeavesFinalizedCrashRecord) {
  std::string edges = TempPath("crash_edges.txt");
  std::string labels = TempPath("crash_labels.txt");
  std::string protected_path = TempPath("crash_protected.txt");
  // Large enough budgets that training far outlives the kill delay below.
  WriteInputs(edges, labels, protected_path, 200, 1200);
  std::string telemetry_dir = TempPath("crash_runs");

  std::vector<std::string> args = {
      std::string(FAIRGEN_CLI_PATH),
      "generate",
      edges,
      "--model=fairgen",
      "--labels=" + labels,
      "--protected=" + protected_path,
      "--out=" + TempPath("crash_generated.txt"),
      "--seed=7",
      "--walks=4000",
      "--cycles=6",
      "--epochs=2",
      "--telemetry-dir=" + telemetry_dir,
      "--telemetry-interval-ms=20",
  };

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: silence output, exec the CLI.
    std::freopen("/dev/null", "w", stdout);
    std::freopen("/dev/null", "w", stderr);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }

  // Wait for the publisher to come up (run dir + first snapshot), then a
  // little longer so the kill lands mid-training.
  std::string run_dir;
  for (int i = 0; i < 400 && run_dir.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::vector<std::string> runs = RunDirs(telemetry_dir);
    if (!runs.empty() && FileExists(runs[0] + "/snapshot.json")) {
      run_dir = runs[0];
    }
  }
  ASSERT_FALSE(run_dir.empty()) << "child never started publishing";
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int wait_status = 0;
  ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);

  // The crash record must exist regardless of how the race resolved.
  EXPECT_TRUE(FileExists(run_dir + "/run.json"));
  EXPECT_TRUE(FileExists(run_dir + "/snapshot.json"));
  EXPECT_TRUE(FileExists(run_dir + "/metrics.prom"));

  if (WIFSIGNALED(wait_status)) {
    // The flush handler re-raises with the default disposition, so the
    // wait status still reports death-by-SIGTERM...
    EXPECT_EQ(WTERMSIG(wait_status), SIGTERM);
    // ...and the manifest records the conventional 128+15.
    auto manifest = json::ParseFile(run_dir + "/run.json");
    ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
    EXPECT_TRUE(manifest->Find("finalized")->AsBool());
    EXPECT_EQ(manifest->GetDouble("exit_status", -1), 128.0 + SIGTERM);
    // The flushed snapshot parses — the atomic rename never leaves a
    // torn file even when the process dies immediately after.
    EXPECT_TRUE(json::ParseFile(run_dir + "/snapshot.json").ok());
  } else {
    // On a machine fast enough to finish before the kill the run ends
    // normally; the record is then a clean exit. Tolerated (the unit
    // tests cover CrashFlush semantics deterministically).
    EXPECT_TRUE(WIFEXITED(wait_status));
    EXPECT_EQ(WEXITSTATUS(wait_status), 0);
  }
}

}  // namespace
}  // namespace fairgen
