// Full-pipeline integration tests: dataset -> few-shot supervision ->
// Algorithm 1 training -> fairness-aware assembly -> Eq. 15/16 evaluation,
// exercising the exact code path of the Fig. 4/5 benchmark harness.

#include <cmath>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/datasets.h"
#include "eval/discrepancy_eval.h"
#include "graph/subgraph.h"
#include "stats/discrepancy.h"
#include "walk/diffusion_core.h"

namespace fairgen {
namespace {

ZooConfig SmallZoo() {
  ZooConfig cfg;
  cfg.labels_per_class = 5;
  cfg.walk_budget.num_walks = 60;
  cfg.walk_budget.epochs = 1;
  cfg.walk_budget.gen_transition_multiplier = 2.5;
  cfg.fairgen.num_walks = 60;
  cfg.fairgen.self_paced_cycles = 2;
  cfg.fairgen.generator_epochs = 1;
  cfg.fairgen.embedding_dim = 16;
  cfg.fairgen.ffn_dim = 24;
  cfg.fairgen.gen_transition_multiplier = 2.5;
  cfg.gae.epochs = 15;
  return cfg;
}

TEST(EndToEndTest, ScaledBlogThroughFullZoo) {
  auto data = LoadDataset("BLOG", /*scale=*/0.015, /*seed=*/11);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  ASSERT_TRUE(data->has_labels());
  ASSERT_TRUE(data->has_protected_group());

  auto results = EvaluateGenerators(*data, SmallZoo(), 11);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 9u);
  for (const GeneratorEvalResult& r : *results) {
    SCOPED_TRACE(r.model);
    for (double d : r.overall) {
      EXPECT_TRUE(std::isfinite(d));
    }
    EXPECT_TRUE(r.has_protected);
    // Same-|E| guarantee of every model's assembly.
    EXPECT_NEAR(static_cast<double>(r.generated_edges),
                static_cast<double>(data->graph.num_edges()),
                0.1 * static_cast<double>(data->graph.num_edges()));
  }
}

TEST(EndToEndTest, ScaledUnlabeledDatasetThroughZoo) {
  auto data = LoadDataset("CA", /*scale=*/0.03, /*seed=*/13);
  ASSERT_TRUE(data.ok());
  EXPECT_FALSE(data->has_labels());
  ZooConfig cfg = SmallZoo();
  cfg.include_ablations = false;
  auto results = EvaluateGenerators(*data, cfg, 13);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 6u);
  for (const GeneratorEvalResult& r : *results) {
    EXPECT_FALSE(r.has_protected);
  }
}

TEST(EndToEndTest, FairGenPreservesProtectedContextBetterThanTagGen) {
  // The paper's central comparison, miniaturized: identical architecture,
  // with vs without the fairness machinery (M2, M3, fair assembly).
  auto data = LoadDataset("ACM", /*scale=*/0.012, /*seed=*/17);
  ASSERT_TRUE(data.ok());
  ZooConfig cfg = SmallZoo();
  cfg.fairgen.num_walks = 150;
  cfg.fairgen.self_paced_cycles = 3;
  cfg.walk_budget.num_walks = 150;

  auto fairgen = MakeFairGen(*data, cfg, FairGenVariant::kFull, 17);
  ASSERT_TRUE(fairgen.ok());
  auto fg_result = EvaluateGenerator(**fairgen, *data, 17);
  ASSERT_TRUE(fg_result.ok());

  TagGenConfig taggen_cfg;
  taggen_cfg.train = cfg.walk_budget;
  TagGenGenerator taggen(taggen_cfg);
  auto tg_result = EvaluateGenerator(taggen, *data, 17);
  ASSERT_TRUE(tg_result.ok());

  EXPECT_LT(MeanDiscrepancy(fg_result->protected_group),
            MeanDiscrepancy(tg_result->protected_group))
      << "FairGen R+=" << MeanDiscrepancy(fg_result->protected_group)
      << " TagGen R+=" << MeanDiscrepancy(tg_result->protected_group);
}

TEST(EndToEndTest, TrainedFairGenWalksRespectClassContext) {
  // After Algorithm 1, label-informed context should bias walks started at
  // protected-class nodes to stay in class regions; verified indirectly
  // via the generated graph's protected internal edge count.
  auto data = LoadDataset("FLICKR", /*scale=*/0.012, /*seed=*/19);
  ASSERT_TRUE(data.ok());
  ZooConfig cfg = SmallZoo();
  auto trainer = MakeFairGen(*data, cfg, FairGenVariant::kFull, 19);
  ASSERT_TRUE(trainer.ok());
  Rng rng(19);
  ASSERT_TRUE((*trainer)->Fit(data->graph, rng).ok());
  auto generated = (*trainer)->Generate(rng);
  ASSERT_TRUE(generated.ok());

  auto orig_sub = InducedSubgraph(data->graph, data->protected_set);
  auto gen_sub = InducedSubgraph(*generated, data->protected_set);
  ASSERT_TRUE(orig_sub.ok());
  ASSERT_TRUE(gen_sub.ok());
  if (orig_sub->graph.num_edges() > 0) {
    // The generated protected subgraph should not collapse.
    EXPECT_GT(gen_sub->graph.num_edges(), 0u);
  }
}

TEST(EndToEndTest, DiffusionCoreGuaranteeOnRealClassCommunity) {
  auto data = LoadDataset("BLOG", /*scale=*/0.02, /*seed=*/23);
  ASSERT_TRUE(data.ok());
  std::vector<NodeId> community;
  for (NodeId v = 0; v < data->graph.num_nodes(); ++v) {
    if (data->labels[v] == 0) community.push_back(v);
  }
  ASSERT_GT(community.size(), 5u);
  auto core = ComputeDiffusionCore(data->graph, community, {0.9, 2});
  ASSERT_TRUE(core.ok());
  EXPECT_GE(core->conductance, 0.0);
  EXPECT_LE(core->conductance, 1.0);
  // Core members must all have escape probability below delta*phi.
  std::vector<uint8_t> in_core =
      NodeMask(data->graph.num_nodes(), core->core);
  for (size_t i = 0; i < community.size(); ++i) {
    if (in_core[community[i]]) {
      EXPECT_LT(core->escape_probability[i], 0.9 * core->conductance);
    }
  }
}

}  // namespace
}  // namespace fairgen
