#include "embed/node2vec.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace fairgen {
namespace {

Node2VecConfig QuickConfig() {
  Node2VecConfig cfg;
  cfg.dim = 16;
  cfg.walks_per_node = 4;
  cfg.walk_length = 12;
  cfg.window = 3;
  cfg.negatives = 3;
  cfg.epochs = 2;
  return cfg;
}

TEST(Node2VecTest, OutputShape) {
  Rng rng(1);
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 60;
  cfg.num_edges = 240;
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  Node2VecModel model = Node2VecModel::Train(data->graph, QuickConfig(), rng);
  EXPECT_EQ(model.embeddings().rows(), 60u);
  EXPECT_EQ(model.embeddings().cols(), 16u);
  EXPECT_EQ(model.dim(), 16u);
}

TEST(Node2VecTest, EmbeddingsAreFiniteAndNonDegenerate) {
  Rng rng(2);
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 80;
  cfg.num_edges = 400;
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  Node2VecModel model = Node2VecModel::Train(data->graph, QuickConfig(), rng);
  double norm = 0.0;
  for (size_t i = 0; i < model.embeddings().size(); ++i) {
    float v = model.embeddings().data()[i];
    ASSERT_TRUE(std::isfinite(v));
    norm += static_cast<double>(v) * v;
  }
  EXPECT_GT(norm, 1e-3);
}

TEST(Node2VecTest, CommunityMembersAreCloserThanStrangers) {
  // The core property the Fig. 6 pipeline relies on: embeddings separate
  // planted communities.
  Rng rng(3);
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 120;
  cfg.num_edges = 900;
  cfg.num_classes = 3;
  cfg.intra_class_affinity = 12.0;
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  Node2VecConfig n2v = QuickConfig();
  n2v.epochs = 3;
  Node2VecModel model = Node2VecModel::Train(data->graph, n2v, rng);

  double intra = 0.0;
  double inter = 0.0;
  int intra_count = 0;
  int inter_count = 0;
  Rng pair_rng(4);
  for (int trial = 0; trial < 4000; ++trial) {
    NodeId u = pair_rng.UniformU32(120);
    NodeId v = pair_rng.UniformU32(120);
    if (u == v) continue;
    double sim = model.CosineSimilarity(u, v);
    if (data->labels[u] == data->labels[v]) {
      intra += sim;
      ++intra_count;
    } else {
      inter += sim;
      ++inter_count;
    }
  }
  ASSERT_GT(intra_count, 0);
  ASSERT_GT(inter_count, 0);
  EXPECT_GT(intra / intra_count, inter / inter_count + 0.1);
}

TEST(Node2VecTest, CosineSimilaritySelfIsOne) {
  Rng rng(5);
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 30;
  cfg.num_edges = 90;
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  Node2VecModel model = Node2VecModel::Train(data->graph, QuickConfig(), rng);
  EXPECT_NEAR(model.CosineSimilarity(3, 3), 1.0, 1e-6);
}

TEST(Node2VecTest, DeterministicGivenSeed) {
  Rng rng_data(6);
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 40;
  cfg.num_edges = 160;
  auto data = GenerateSynthetic(cfg, rng_data);
  ASSERT_TRUE(data.ok());
  Rng a(77);
  Rng b(77);
  Node2VecModel m1 = Node2VecModel::Train(data->graph, QuickConfig(), a);
  Node2VecModel m2 = Node2VecModel::Train(data->graph, QuickConfig(), b);
  for (size_t i = 0; i < m1.embeddings().size(); ++i) {
    EXPECT_EQ(m1.embeddings().data()[i], m2.embeddings().data()[i]);
  }
}

}  // namespace
}  // namespace fairgen
