#include "embed/logistic_regression.h"

#include <gtest/gtest.h>

namespace fairgen {
namespace {

// Three well-separated Gaussian blobs.
void MakeBlobs(uint32_t per_class, nn::Tensor& features,
               std::vector<uint32_t>& labels, Rng& rng) {
  const float centers[3][2] = {{4.0f, 0.0f}, {-4.0f, 0.0f}, {0.0f, 4.0f}};
  features = nn::Tensor(3 * per_class, 2);
  labels.assign(3 * per_class, 0);
  for (uint32_t c = 0; c < 3; ++c) {
    for (uint32_t i = 0; i < per_class; ++i) {
      size_t row = c * per_class + i;
      features.at(row, 0) =
          centers[c][0] + static_cast<float>(rng.Normal()) * 0.5f;
      features.at(row, 1) =
          centers[c][1] + static_cast<float>(rng.Normal()) * 0.5f;
      labels[row] = c;
    }
  }
}

TEST(LogisticRegressionTest, FitsSeparableBlobs) {
  Rng rng(1);
  nn::Tensor features;
  std::vector<uint32_t> labels;
  MakeBlobs(40, features, labels, rng);
  LogisticRegression clf;
  ASSERT_TRUE(clf.Fit(features, labels, 3, {}, rng).ok());
  EXPECT_GT(clf.Accuracy(features, labels), 0.98);
}

TEST(LogisticRegressionTest, PredictProbaRowsSumToOne) {
  Rng rng(2);
  nn::Tensor features;
  std::vector<uint32_t> labels;
  MakeBlobs(20, features, labels, rng);
  LogisticRegression clf;
  ASSERT_TRUE(clf.Fit(features, labels, 3, {}, rng).ok());
  nn::Tensor proba = clf.PredictProba(features);
  for (size_t r = 0; r < proba.rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_GE(proba.at(r, c), 0.0f);
      sum += proba.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(LogisticRegressionTest, PredictMatchesArgmaxProba) {
  Rng rng(3);
  nn::Tensor features;
  std::vector<uint32_t> labels;
  MakeBlobs(15, features, labels, rng);
  LogisticRegression clf;
  ASSERT_TRUE(clf.Fit(features, labels, 3, {}, rng).ok());
  nn::Tensor proba = clf.PredictProba(features);
  std::vector<uint32_t> preds = clf.Predict(features);
  for (size_t r = 0; r < preds.size(); ++r) {
    uint32_t argmax = 0;
    for (uint32_t c = 1; c < 3; ++c) {
      if (proba.at(r, c) > proba.at(r, argmax)) argmax = c;
    }
    EXPECT_EQ(preds[r], argmax);
  }
}

TEST(LogisticRegressionTest, RejectsMismatchedInputs) {
  Rng rng(4);
  LogisticRegression clf;
  nn::Tensor features(5, 2);
  std::vector<uint32_t> labels(4, 0);
  EXPECT_TRUE(clf.Fit(features, labels, 2, {}, rng)
                  .IsInvalidArgument());
}

TEST(LogisticRegressionTest, RejectsSingleClass) {
  Rng rng(5);
  LogisticRegression clf;
  nn::Tensor features(3, 2);
  std::vector<uint32_t> labels(3, 0);
  EXPECT_TRUE(clf.Fit(features, labels, 1, {}, rng).IsInvalidArgument());
}

TEST(LogisticRegressionTest, RejectsOutOfRangeLabel) {
  Rng rng(6);
  LogisticRegression clf;
  nn::Tensor features(3, 2);
  std::vector<uint32_t> labels{0, 1, 5};
  EXPECT_TRUE(clf.Fit(features, labels, 2, {}, rng).IsInvalidArgument());
}

TEST(LogisticRegressionTest, IsFittedFlag) {
  LogisticRegression clf;
  EXPECT_FALSE(clf.is_fitted());
  Rng rng(7);
  nn::Tensor features;
  std::vector<uint32_t> labels;
  MakeBlobs(10, features, labels, rng);
  ASSERT_TRUE(clf.Fit(features, labels, 3, {}, rng).ok());
  EXPECT_TRUE(clf.is_fitted());
  EXPECT_EQ(clf.num_classes(), 3u);
}

TEST(LogisticRegressionTest, WeightDecayRegularizes) {
  // Heavy regularization should underfit relative to light regularization.
  Rng rng(8);
  nn::Tensor features;
  std::vector<uint32_t> labels;
  MakeBlobs(30, features, labels, rng);
  LogisticRegression light;
  LogisticRegressionConfig light_cfg;
  light_cfg.weight_decay = 1e-5f;
  ASSERT_TRUE(light.Fit(features, labels, 3, light_cfg, rng).ok());
  LogisticRegression heavy;
  LogisticRegressionConfig heavy_cfg;
  heavy_cfg.weight_decay = 50.0f;
  ASSERT_TRUE(heavy.Fit(features, labels, 3, heavy_cfg, rng).ok());
  EXPECT_GE(light.Accuracy(features, labels),
            heavy.Accuracy(features, labels));
}

}  // namespace
}  // namespace fairgen
