#include "stats/discrepancy.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "generators/er.h"
#include "rng/rng.h"

namespace fairgen {
namespace {

TEST(MetricDiscrepancyTest, RelativeError) {
  EXPECT_NEAR(MetricDiscrepancy(10.0, 8.0), 0.2, 1e-12);
  EXPECT_NEAR(MetricDiscrepancy(10.0, 12.0), 0.2, 1e-12);
  EXPECT_EQ(MetricDiscrepancy(5.0, 5.0), 0.0);
}

TEST(MetricDiscrepancyTest, NegativeOriginalUsesAbsoluteValue) {
  EXPECT_NEAR(MetricDiscrepancy(-2.0, -1.0), 0.5, 1e-12);
}

TEST(MetricDiscrepancyTest, ZeroOriginalFallsBackToAbsolute) {
  EXPECT_EQ(MetricDiscrepancy(0.0, 0.0), 0.0);
  EXPECT_EQ(MetricDiscrepancy(0.0, 3.0), 3.0);
}

TEST(OverallDiscrepancyTest, IdenticalGraphsGiveZero) {
  Rng rng(3);
  auto g = SampleErdosRenyi(60, 150, rng);
  ASSERT_TRUE(g.ok());
  auto disc = OverallDiscrepancy(*g, *g);
  ASSERT_TRUE(disc.ok());
  for (double d : *disc) EXPECT_EQ(d, 0.0);
}

TEST(OverallDiscrepancyTest, NodeCountMismatchRejected) {
  auto a = Graph::FromEdges(3, {{0, 1}});
  auto b = Graph::FromEdges(4, {{0, 1}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(OverallDiscrepancy(*a, *b).ok());
}

TEST(OverallDiscrepancyTest, DetectsEdgeCountDifference) {
  auto a = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  auto b = Graph::FromEdges(4, {{0, 1}, {1, 2}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto disc = OverallDiscrepancy(*a, *b);
  ASSERT_TRUE(disc.ok());
  // Average degree halves: relative error 0.5.
  EXPECT_NEAR((*disc)[0], 0.5, 1e-12);
}

TEST(ProtectedDiscrepancyTest, MeasuresInducedSubgraphs) {
  // Original: protected {0,1,2} forms a triangle. Generated: same node
  // set, but the protected triangle is destroyed.
  auto original =
      Graph::FromEdges(5, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {2, 3}});
  auto generated =
      Graph::FromEdges(5, {{0, 3}, {1, 4}, {2, 3}, {3, 4}, {0, 4}});
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(generated.ok());
  auto disc = ProtectedDiscrepancy(*original, *generated, {0, 1, 2});
  ASSERT_TRUE(disc.ok());
  // Induced protected subgraph went from triangle (avg degree 2) to empty
  // (avg degree 0): relative error 1.
  EXPECT_NEAR((*disc)[0], 1.0, 1e-12);
  // Triangle count 1 -> 0.
  EXPECT_NEAR((*disc)[2], 1.0, 1e-12);
}

TEST(ProtectedDiscrepancyTest, PerfectProtectedPreservationIsZero) {
  auto original =
      Graph::FromEdges(5, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {2, 3}});
  // Same protected triangle, different majority edges.
  auto generated =
      Graph::FromEdges(5, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {1, 4}});
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(generated.ok());
  auto disc = ProtectedDiscrepancy(*original, *generated, {0, 1, 2});
  ASSERT_TRUE(disc.ok());
  for (double d : *disc) EXPECT_EQ(d, 0.0);
}

TEST(ProtectedDiscrepancyTest, EmptyProtectedSetRejected) {
  auto g = Graph::FromEdges(3, {{0, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(ProtectedDiscrepancy(*g, *g, {}).ok());
}

TEST(MeanDiscrepancyTest, Averages) {
  std::array<double, kNumGraphMetrics> v{0.0, 1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_NEAR(MeanDiscrepancy(v), 2.5, 1e-12);
}

TEST(DiscrepancyIntegrationTest, ERGeneratorDestroysTriangles) {
  // The classic observation behind Fig. 4: ER matches average degree
  // exactly (same m) but cannot reproduce triangle counts of a clustered
  // graph.
  Rng rng(13);
  SyntheticGraphConfig cfg;
  cfg.num_nodes = 200;
  cfg.num_edges = 1400;
  cfg.num_classes = 4;
  cfg.intra_class_affinity = 10.0;
  auto data = GenerateSynthetic(cfg, rng);
  ASSERT_TRUE(data.ok());
  ErdosRenyiGenerator er;
  ASSERT_TRUE(er.Fit(data->graph, rng).ok());
  auto generated = er.Generate(rng);
  ASSERT_TRUE(generated.ok());
  auto disc = OverallDiscrepancy(data->graph, *generated);
  ASSERT_TRUE(disc.ok());
  EXPECT_LT((*disc)[0], 1e-9);  // average degree matched exactly
  EXPECT_GT((*disc)[2], 0.4);   // triangles not preserved
}

}  // namespace
}  // namespace fairgen
