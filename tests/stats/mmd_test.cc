#include "stats/mmd.h"

#include <gtest/gtest.h>

#include "generators/ba.h"
#include "generators/er.h"
#include "rng/rng.h"

namespace fairgen {
namespace {

TEST(GaussianMmdTest, IdenticalSamplesGiveZero) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  auto mmd = GaussianMmd(x, x, 1.0);
  ASSERT_TRUE(mmd.ok());
  EXPECT_NEAR(*mmd, 0.0, 1e-12);
}

TEST(GaussianMmdTest, SeparatedSamplesGiveLargeValue) {
  std::vector<double> x{0.0, 0.1, 0.2};
  std::vector<double> y{10.0, 10.1, 10.2};
  auto mmd = GaussianMmd(x, y, 1.0);
  ASSERT_TRUE(mmd.ok());
  EXPECT_GT(*mmd, 1.5);  // kernels within each ~1, across ~0 -> MMD² ~ 2
}

TEST(GaussianMmdTest, MonotoneInSeparation) {
  std::vector<double> x{0.0, 0.5, 1.0};
  auto near = GaussianMmd(x, {0.2, 0.7, 1.2}, 1.0);
  auto far = GaussianMmd(x, {3.0, 3.5, 4.0}, 1.0);
  ASSERT_TRUE(near.ok());
  ASSERT_TRUE(far.ok());
  EXPECT_LT(*near, *far);
}

TEST(GaussianMmdTest, SameDistributionSmallValue) {
  Rng rng(1);
  std::vector<double> x(400);
  std::vector<double> y(400);
  for (double& v : x) v = rng.Normal();
  for (double& v : y) v = rng.Normal();
  auto mmd = GaussianMmd(x, y, 1.0);
  ASSERT_TRUE(mmd.ok());
  EXPECT_LT(*mmd, 0.02);
}

TEST(GaussianMmdTest, RejectsBadInputs) {
  std::vector<double> x{1.0};
  EXPECT_FALSE(GaussianMmd({}, x, 1.0).ok());
  EXPECT_FALSE(GaussianMmd(x, {}, 1.0).ok());
  EXPECT_FALSE(GaussianMmd(x, x, 0.0).ok());
  EXPECT_FALSE(GaussianMmd(x, x, -1.0).ok());
}

TEST(MedianHeuristicTest, SimpleMedian) {
  // Pooled {0, 1}: single distance 1.
  EXPECT_NEAR(MedianHeuristic({0.0}, {1.0}), 1.0, 1e-12);
}

TEST(MedianHeuristicTest, AllEqualFallsBackToOne) {
  EXPECT_EQ(MedianHeuristic({2.0, 2.0}, {2.0}), 1.0);
}

TEST(DegreeMmdTest, SelfComparisonIsZero) {
  Rng rng(2);
  auto g = SampleErdosRenyi(80, 240, rng);
  ASSERT_TRUE(g.ok());
  auto mmd = DegreeMmd(*g, *g);
  ASSERT_TRUE(mmd.ok());
  EXPECT_NEAR(*mmd, 0.0, 1e-12);
}

TEST(DegreeMmdTest, SameModelSmallerThanDifferentModel) {
  // Two ER draws are closer in degree distribution than ER vs BA.
  Rng rng(3);
  auto er1 = SampleErdosRenyi(300, 900, rng);
  auto er2 = SampleErdosRenyi(300, 900, rng);
  auto ba = SampleBarabasiAlbert(300, 3, 900, rng);
  ASSERT_TRUE(er1.ok());
  ASSERT_TRUE(er2.ok());
  ASSERT_TRUE(ba.ok());
  auto same = DegreeMmd(*er1, *er2);
  auto diff = DegreeMmd(*er1, *ba);
  ASSERT_TRUE(same.ok());
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(*same, *diff);
}

TEST(ClusteringMmdTest, CliqueVsTreeIsLarge) {
  // 3 disjoint 5-cliques (clustering 1) vs a star-ish tree (clustering 0).
  std::vector<Edge> clique_edges;
  for (int b = 0; b < 3; ++b) {
    NodeId base = static_cast<NodeId>(5 * b);
    for (NodeId u = 0; u < 5; ++u) {
      for (NodeId v = u + 1; v < 5; ++v) {
        clique_edges.push_back({base + u, base + v});
      }
    }
  }
  auto cliques = Graph::FromEdges(15, clique_edges);
  ASSERT_TRUE(cliques.ok());
  std::vector<Edge> tree_edges;
  for (NodeId v = 1; v < 15; ++v) tree_edges.push_back({(v - 1) / 2, v});
  auto tree = Graph::FromEdges(15, tree_edges);
  ASSERT_TRUE(tree.ok());
  auto same = ClusteringMmd(*cliques, *cliques);
  auto diff = ClusteringMmd(*cliques, *tree);
  ASSERT_TRUE(same.ok());
  ASSERT_TRUE(diff.ok());
  EXPECT_NEAR(*same, 0.0, 1e-12);
  EXPECT_GT(*diff, 0.5);
}

TEST(ClusteringMmdTest, RejectsDegenerateGraphs) {
  auto path = Graph::FromEdges(2, {{0, 1}});  // no node with degree >= 2
  ASSERT_TRUE(path.ok());
  Rng rng(4);
  auto g = SampleErdosRenyi(30, 90, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(ClusteringMmd(*path, *g).ok());
}

TEST(LocalClusteringSamplesTest, ValuesInUnitInterval) {
  Rng rng(5);
  auto g = SampleErdosRenyi(100, 500, rng);
  ASSERT_TRUE(g.ok());
  for (double c : LocalClusteringSamples(*g)) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

}  // namespace
}  // namespace fairgen
