#include "stats/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "generators/ba.h"
#include "generators/er.h"
#include "rng/rng.h"

namespace fairgen {
namespace {

Graph Triangle() {
  return Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}}).MoveValueUnsafe();
}

TEST(MetricsTest, AverageDegree) {
  EXPECT_NEAR(AverageDegree(Triangle()), 2.0, 1e-12);
  EXPECT_EQ(AverageDegree(Graph::Empty(5)), 0.0);
  EXPECT_EQ(AverageDegree(Graph::Empty(0)), 0.0);
}

TEST(MetricsTest, GiniZeroForRegularGraph) {
  // Triangle is 2-regular: perfect equality.
  EXPECT_NEAR(GiniCoefficient(Triangle()), 0.0, 1e-9);
}

TEST(MetricsTest, GiniHighForStar) {
  std::vector<Edge> edges;
  constexpr uint32_t kN = 101;
  for (NodeId v = 1; v < kN; ++v) edges.push_back({0, v});
  auto g = Graph::FromEdges(kN, edges);
  ASSERT_TRUE(g.ok());
  // Star degree sequence is extremely unequal.
  EXPECT_GT(GiniCoefficient(*g), 0.45);
  EXPECT_LE(GiniCoefficient(*g), 1.0);
}

TEST(MetricsTest, GiniZeroOnEmptyDegrees) {
  EXPECT_EQ(GiniCoefficient(Graph::Empty(4)), 0.0);
}

TEST(MetricsTest, GiniMatchesHandComputedExample) {
  // Degrees after build: path 0-1-2 gives d = {1, 2, 1}.
  auto g = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(g.ok());
  // Sorted d = {1,1,2}; G = 2(1*1+2*1+3*2)/(3*4) - 4/3 = 18/12 - 4/3 = 1/6.
  EXPECT_NEAR(GiniCoefficient(*g), 1.0 / 6.0, 1e-12);
}

TEST(MetricsTest, EdgeEntropyMaximalForRegularGraph) {
  // A cycle is 2-regular: degree distribution is uniform and the relative
  // entropy is exactly 1.
  std::vector<Edge> edges;
  constexpr uint32_t kN = 20;
  for (NodeId v = 0; v < kN; ++v) edges.push_back({v, (v + 1) % kN});
  auto g = Graph::FromEdges(kN, edges);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(EdgeDistributionEntropy(*g), 1.0, 1e-9);
}

TEST(MetricsTest, EdgeEntropyLowerForStar) {
  std::vector<Edge> edges;
  constexpr uint32_t kN = 20;
  for (NodeId v = 1; v < kN; ++v) edges.push_back({0, v});
  auto star = Graph::FromEdges(kN, edges);
  ASSERT_TRUE(star.ok());
  EXPECT_LT(EdgeDistributionEntropy(*star), 0.95);
  EXPECT_GT(EdgeDistributionEntropy(*star), 0.0);
}

TEST(MetricsTest, EdgeEntropyEdgeCases) {
  EXPECT_EQ(EdgeDistributionEntropy(Graph::Empty(5)), 0.0);
  EXPECT_EQ(EdgeDistributionEntropy(Graph::Empty(0)), 0.0);
  auto tiny = Graph::FromEdges(1, {});
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(EdgeDistributionEntropy(*tiny), 0.0);
}

TEST(MetricsTest, PowerLawExponentOnPureParetoDegrees) {
  // BA graphs have approximately power-law degree distributions; the MLE
  // should land in a plausible range (BA theory: gamma = 3, finite-size
  // estimates are lower).
  Rng rng(3);
  auto g = SampleBarabasiAlbert(3000, 2, 0, rng);
  ASSERT_TRUE(g.ok());
  double gamma = PowerLawExponent(*g);
  EXPECT_GT(gamma, 1.5);
  EXPECT_LT(gamma, 4.0);
}

TEST(MetricsTest, PowerLawExponentDegenerateRegular) {
  // All degrees equal: the estimator formally diverges; we return a large
  // finite sentinel.
  auto g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  ASSERT_TRUE(g.ok());
  double gamma = PowerLawExponent(*g);
  EXPECT_GT(gamma, 4.0);
  EXPECT_TRUE(std::isfinite(gamma));
}

TEST(MetricsTest, PowerLawExponentIgnoresIsolatedNodes) {
  auto with_isolate = Graph::FromEdges(5, {{0, 1}, {1, 2}, {1, 3}});
  auto without = Graph::FromEdges(4, {{0, 1}, {1, 2}, {1, 3}});
  ASSERT_TRUE(with_isolate.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_NEAR(PowerLawExponent(*with_isolate), PowerLawExponent(*without),
              1e-12);
}

TEST(MetricsTest, PowerLawExponentEmptyGraphIsZero) {
  EXPECT_EQ(PowerLawExponent(Graph::Empty(3)), 0.0);
}

TEST(MetricsTest, ComputeMetricsAggregatesAll) {
  Graph g = Triangle();
  GraphMetrics m = ComputeMetrics(g);
  EXPECT_NEAR(m.average_degree, 2.0, 1e-12);
  EXPECT_EQ(m.lcc, 3.0);
  EXPECT_EQ(m.triangle_count, 1.0);
  EXPECT_NEAR(m.gini, 0.0, 1e-9);
  auto arr = m.ToArray();
  EXPECT_EQ(arr[0], m.average_degree);
  EXPECT_EQ(arr[1], m.lcc);
  EXPECT_EQ(arr[2], m.triangle_count);
  EXPECT_EQ(arr[3], m.power_law_exponent);
  EXPECT_EQ(arr[4], m.gini);
  EXPECT_EQ(arr[5], m.edge_entropy);
}

TEST(MetricsTest, MetricNamesArityMatches) {
  EXPECT_EQ(MetricNames().size(), kNumGraphMetrics);
  EXPECT_EQ(MetricNames()[0], "AvgDegree");
  EXPECT_EQ(MetricNames()[5], "EdgeEntropy");
}

class MetricsRandomGraphTest : public testing::TestWithParam<uint64_t> {};

TEST_P(MetricsRandomGraphTest, AllMetricsFiniteOnRandomGraphs) {
  Rng rng(GetParam());
  auto g = SampleErdosRenyi(150, 400, rng);
  ASSERT_TRUE(g.ok());
  GraphMetrics m = ComputeMetrics(*g);
  for (double v : m.ToArray()) {
    EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_GE(m.gini, 0.0);
  EXPECT_LE(m.gini, 1.0);
  EXPECT_GE(m.edge_entropy, 0.0);
  EXPECT_LE(m.edge_entropy, 1.0 + 1e-9);
  EXPECT_LE(m.lcc, 150.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsRandomGraphTest,
                         testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace fairgen
