#include "stats/extended_metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "generators/ba.h"
#include "generators/er.h"

namespace fairgen {
namespace {

Graph Triangle() {
  return Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}}).MoveValueUnsafe();
}

Graph Path4() {
  return Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}).MoveValueUnsafe();
}

TEST(GlobalClusteringTest, TriangleIsOne) {
  EXPECT_NEAR(GlobalClusteringCoefficient(Triangle()), 1.0, 1e-12);
}

TEST(GlobalClusteringTest, PathIsZero) {
  EXPECT_EQ(GlobalClusteringCoefficient(Path4()), 0.0);
}

TEST(GlobalClusteringTest, LollipopMatchesHandComputed) {
  // Triangle {0,1,2} + pendant 2-3: triangles=1, wedges: d = {2,2,3,1}
  // -> 1 + 1 + 3 + 0 = 5; C = 3/5.
  auto g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(GlobalClusteringCoefficient(*g), 0.6, 1e-12);
}

TEST(GlobalClusteringTest, EmptyGraphIsZero) {
  EXPECT_EQ(GlobalClusteringCoefficient(Graph::Empty(5)), 0.0);
}

TEST(AverageClusteringTest, TriangleIsOne) {
  EXPECT_NEAR(AverageClusteringCoefficient(Triangle()), 1.0, 1e-12);
}

TEST(AverageClusteringTest, LollipopMatchesHandComputed) {
  // Local: node0 = 1/1, node1 = 1/1, node2 = 1/3; node3 skipped (d<2).
  auto g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(AverageClusteringCoefficient(*g), (1.0 + 1.0 + 1.0 / 3) / 3,
              1e-12);
}

TEST(AverageClusteringTest, DegreeOneNodesExcluded) {
  EXPECT_EQ(AverageClusteringCoefficient(Path4()), 0.0);
}

TEST(AssortativityTest, RegularGraphUndefinedIsZero) {
  // Cycle: all degrees equal -> zero variance -> defined as 0.
  std::vector<Edge> edges;
  for (NodeId v = 0; v < 6; ++v) edges.push_back({v, (v + 1) % 6});
  auto g = Graph::FromEdges(6, edges);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(DegreeAssortativity(*g), 0.0);
}

TEST(AssortativityTest, StarIsStronglyDisassortative) {
  std::vector<Edge> edges;
  for (NodeId v = 1; v < 10; ++v) edges.push_back({0, v});
  auto g = Graph::FromEdges(10, edges);
  ASSERT_TRUE(g.ok());
  EXPECT_LT(DegreeAssortativity(*g), -0.9);
}

TEST(AssortativityTest, BAGraphIsDisassortative) {
  // Preferential attachment produces negative degree correlation.
  Rng rng(3);
  auto g = SampleBarabasiAlbert(800, 2, 0, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_LT(DegreeAssortativity(*g), 0.0);
}

TEST(AssortativityTest, WithinValidRange) {
  Rng rng(5);
  auto g = SampleErdosRenyi(120, 400, rng);
  ASSERT_TRUE(g.ok());
  double r = DegreeAssortativity(*g);
  EXPECT_GE(r, -1.0);
  EXPECT_LE(r, 1.0);
}

TEST(PathLengthTest, PathGraphExact) {
  // Path 0-1-2-3: distances 1,2,3,1,2,1 (x2 directions) -> mean = 10/6.
  Rng rng(1);
  EXPECT_NEAR(CharacteristicPathLength(Path4(), 0, rng), 10.0 / 6.0, 1e-12);
}

TEST(PathLengthTest, CompleteGraphIsOne) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) edges.push_back({u, v});
  }
  auto g = Graph::FromEdges(5, edges);
  ASSERT_TRUE(g.ok());
  Rng rng(2);
  EXPECT_NEAR(CharacteristicPathLength(*g, 0, rng), 1.0, 1e-12);
}

TEST(PathLengthTest, DisconnectedPairsIgnored) {
  auto g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  ASSERT_TRUE(g.ok());
  Rng rng(3);
  EXPECT_NEAR(CharacteristicPathLength(*g, 0, rng), 1.0, 1e-12);
}

TEST(PathLengthTest, SampledEstimateTracksExact) {
  Rng rng(7);
  auto g = SampleErdosRenyi(300, 1200, rng);
  ASSERT_TRUE(g.ok());
  Rng rng_exact(8);
  Rng rng_sample(9);
  double exact = CharacteristicPathLength(*g, 0, rng_exact);
  double sampled = CharacteristicPathLength(*g, 60, rng_sample);
  EXPECT_NEAR(sampled, exact, 0.15 * exact);
}

TEST(PathLengthTest, EmptyAndTinyGraphs) {
  Rng rng(4);
  EXPECT_EQ(CharacteristicPathLength(Graph::Empty(0), 0, rng), 0.0);
  EXPECT_EQ(CharacteristicPathLength(Graph::Empty(3), 0, rng), 0.0);
}

TEST(ExtendedMetricsTest, AggregateFieldsConsistent) {
  Rng rng(11);
  auto g = SampleErdosRenyi(150, 500, rng);
  ASSERT_TRUE(g.ok());
  ExtendedGraphMetrics m = ComputeExtendedMetrics(*g, 0, rng);
  EXPECT_NEAR(m.global_clustering, GlobalClusteringCoefficient(*g), 1e-12);
  EXPECT_NEAR(m.average_clustering, AverageClusteringCoefficient(*g),
              1e-12);
  EXPECT_GT(m.characteristic_path_length, 1.0);
  EXPECT_GT(m.lcc_fraction, 0.8);
  EXPECT_LE(m.lcc_fraction, 1.0);
}

TEST(ExtendedMetricsTest, ClusteredGraphBeatsERInClustering) {
  // A planted-partition graph has more triangles than ER at equal size —
  // the property Fig. 4's triangle panel exercises.
  Rng rng(13);
  std::vector<Edge> edges;
  // Three 10-cliques plus sparse random cross edges.
  for (int block = 0; block < 3; ++block) {
    NodeId base = static_cast<NodeId>(10 * block);
    for (NodeId u = 0; u < 10; ++u) {
      for (NodeId v = u + 1; v < 10; ++v) {
        edges.push_back({base + u, base + v});
      }
    }
  }
  auto clustered = Graph::FromEdges(30, edges);
  ASSERT_TRUE(clustered.ok());
  auto er = SampleErdosRenyi(30, clustered->num_edges(), rng);
  ASSERT_TRUE(er.ok());
  EXPECT_GT(GlobalClusteringCoefficient(*clustered),
            GlobalClusteringCoefficient(*er) + 0.2);
}

}  // namespace
}  // namespace fairgen
